#include "trace/trace_cache.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <sys/file.h>
#include <unistd.h>

#include "common/fault_injection.hh"
#include "common/log.hh"
#include "common/metrics.hh"
#include "trace/trace_io.hh"

namespace fs = std::filesystem;

namespace prophet::trace
{

namespace
{

/**
 * Registry adoption of the per-instance Stats counters: the same
 * increments also land in process-wide "trace_cache.*" metrics, so
 * `prophet run --metrics-out` reports cache behaviour without
 * plumbing TraceCache pointers through the driver. Looked up once.
 */
struct CacheMetrics
{
    metrics::Counter &hits = metrics::counter("trace_cache.hits");
    metrics::Counter &misses = metrics::counter("trace_cache.misses");
    metrics::Counter &stores = metrics::counter("trace_cache.stores");
    metrics::Counter &upgrades =
        metrics::counter("trace_cache.upgrades");
    metrics::Counter &checksumFailures =
        metrics::counter("trace_cache.checksum_failures");
    metrics::Counter &quarantines =
        metrics::counter("trace_cache.quarantines");
    metrics::Counter &lockContention =
        metrics::counter("trace_cache.lock_contention");
    metrics::Counter &storeFailures =
        metrics::counter("trace_cache.store_failures");

    static CacheMetrics &
    get()
    {
        static CacheMetrics m;
        return m;
    }
};

constexpr const char *kLockName = ".lock";
constexpr const char *kCountersName = "cache-counters.txt";

/**
 * Workload labels become file names; anything outside the portable
 * set maps to '_' ("soplex_pds-50" is fine as-is).
 */
std::string
sanitize(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
            || (c >= '0' && c <= '9') || c == '_' || c == '-'
            || c == '.';
        if (!ok)
            c = '_';
    }
    return out;
}

/** Binary-format version from a .ptrc header (0 when unreadable). */
std::uint32_t
fileVersion(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return 0;
    char magic[4];
    std::uint32_t version = 0;
    bool ok = std::fread(magic, 1, 4, f) == 4
        && std::memcmp(magic, "PTRC", 4) == 0
        && std::fread(&version, sizeof(version), 1, f) == 1;
    std::fclose(f);
    return ok ? version : 0;
}

/**
 * The cross-process writer lock: flock(2) on "<dir>/.lock".
 * Advisory and automatically released when the holding process
 * dies, so there is no stale-lock state to recover from. Best
 * effort: if the lock file cannot even be opened (read-only
 * directory), writers proceed unlocked — the temp+rename store is
 * still atomic, the lock only serializes the writers.
 */
class DirLock
{
  public:
    explicit DirLock(const std::string &dir)
    {
        std::string path = dir + "/" + kLockName;
        fd = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
        if (fd < 0)
            return;
        if (::flock(fd, LOCK_EX | LOCK_NB) == 0) {
            held = true;
            return;
        }
        if (errno == EWOULDBLOCK) {
            contendedFlag = true;
            held = ::flock(fd, LOCK_EX) == 0; // block for our turn
        }
    }

    ~DirLock()
    {
        if (fd >= 0) {
            if (held)
                ::flock(fd, LOCK_UN);
            ::close(fd);
        }
    }

    DirLock(const DirLock &) = delete;
    DirLock &operator=(const DirLock &) = delete;

    /** Someone else held the lock when we arrived. */
    bool contended() const { return contendedFlag; }

  private:
    int fd = -1;
    bool held = false;
    bool contendedFlag = false;
};

TraceCache::PersistentCounters
readCountersFile(const std::string &dir)
{
    TraceCache::PersistentCounters out;
    std::ifstream in(dir + "/" + kCountersName);
    std::string line;
    while (std::getline(in, line)) {
        auto eq = line.find('=');
        if (eq == std::string::npos)
            continue;
        std::string key = line.substr(0, eq);
        std::uint64_t value =
            std::strtoull(line.c_str() + eq + 1, nullptr, 10);
        if (key == "checksum_failures")
            out.checksumFailures = value;
        else if (key == "quarantines")
            out.quarantines = value;
        else if (key == "lock_contention")
            out.lockContention = value;
        else if (key == "store_failures")
            out.storeFailures = value;
    }
    return out;
}

void
writeCountersFile(const std::string &dir,
                  const TraceCache::PersistentCounters &c)
{
    // Atomic like the entries themselves: a reader never sees a
    // half-written counter file.
    std::string final_path = dir + "/" + kCountersName;
    std::string tmp = final_path + ".tmp"
        + std::to_string(static_cast<unsigned long>(::getpid()));
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return;
        out << "checksum_failures=" << c.checksumFailures << "\n"
            << "quarantines=" << c.quarantines << "\n"
            << "lock_contention=" << c.lockContention << "\n"
            << "store_failures=" << c.storeFailures << "\n";
        if (!out)
            return;
    }
    std::error_code ec;
    fs::rename(tmp, final_path, ec);
    if (ec)
        fs::remove(tmp, ec);
}

std::vector<TraceCache::Entry>
listDir(const std::string &dir, bool corrupt)
{
    std::vector<TraceCache::Entry> out;
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        return out;
    for (const auto &de : fs::directory_iterator(dir, ec)) {
        bool is_corrupt = de.path().extension() == ".corrupt";
        if (corrupt != is_corrupt)
            continue;
        if (!corrupt && de.path().extension() != ".ptrc")
            continue;
        if (corrupt
            && de.path().stem().extension() != ".ptrc")
            continue;
        TraceCache::Entry e;
        e.file = de.path().filename().string();
        e.bytes = static_cast<std::uint64_t>(
            fs::file_size(de.path(), ec));
        e.version = fileVersion(de.path().string());
        out.push_back(std::move(e));
    }
    std::sort(out.begin(), out.end(),
              [](const TraceCache::Entry &a,
                 const TraceCache::Entry &b) {
                  return a.file < b.file;
              });
    return out;
}

/**
 * Read-modify-write one counter WITHOUT taking the writer lock: the
 * caller either holds it already (store()'s failure paths — flock
 * does not recurse across file descriptions within a process, so
 * re-locking would self-deadlock) or is bumpPersistent, which takes
 * it first.
 */
void
bumpCountersInDir(const std::string &dir,
                  std::uint64_t
                      TraceCache::PersistentCounters::*field,
                  std::uint64_t delta)
{
    TraceCache::PersistentCounters c = readCountersFile(dir);
    c.*field += delta;
    writeCountersFile(dir, c);
}

} // anonymous namespace

TraceCache::TraceCache(std::string dir)
    : dirPath(dir.empty() ? defaultDir() : std::move(dir))
{}

std::string
TraceCache::defaultDir()
{
    if (const char *env = std::getenv("PROPHET_TRACE_CACHE"))
        if (*env)
            return env;
    return ".prophet-trace-cache";
}

std::string
TraceCache::path(const std::string &workload,
                 std::size_t records) const
{
    return dirPath + "/" + sanitize(workload) + "-r"
        + std::to_string(records) + ".g"
        + std::to_string(kGeneratorSchemaVersion) + ".ptrc";
}

void
TraceCache::bumpPersistent(std::uint64_t PersistentCounters::*field,
                           std::uint64_t delta)
{
    // Read-modify-write under the writer lock so concurrent
    // processes never lose increments. Best effort by design.
    DirLock lock(dirPath);
    bumpCountersInDir(dirPath, field, delta);
}

void
TraceCache::quarantineEntry(const std::string &file, bool checksum)
{
    std::error_code ec;
    fs::rename(file, file + ".corrupt", ec);
    bool renamed = !ec;
    prophet_warnf("trace-cache: quarantined damaged entry %s%s",
                  file.c_str(),
                  renamed ? " -> .corrupt" : " (rename failed)");
    {
        std::lock_guard<std::mutex> lock(mu);
        if (renamed)
            ++counters.quarantines;
        if (checksum)
            ++counters.checksumFailures;
    }
    if (renamed)
        CacheMetrics::get().quarantines.inc();
    if (checksum)
        CacheMetrics::get().checksumFailures.inc();
    if (checksum)
        bumpPersistent(&PersistentCounters::checksumFailures);
    if (renamed)
        bumpPersistent(&PersistentCounters::quarantines);
}

bool
TraceCache::load(const std::string &workload, std::size_t records,
                 Trace &out)
{
    std::string file = path(workload, records);
    LoadReport report;
    if (!loadBinary(out, file, report)) {
        if (report.status == LoadStatus::OpenFail) {
            // A plain miss: the entry does not exist (or cannot be
            // opened, which regeneration will surface anyway).
            CacheMetrics::get().misses.inc();
            std::lock_guard<std::mutex> lock(mu);
            ++counters.misses;
            return false;
        }
        prophet_warnf(
            "trace-cache: damaged entry %s (%s at offset %llu), "
            "regenerating",
            file.c_str(), loadStatusName(report.status),
            static_cast<unsigned long long>(report.offset));
        if (report.corrupt()) {
            // Structural damage: move the evidence aside so the
            // regenerated entry starts from a clean name.
            quarantineEntry(
                file, report.status == LoadStatus::ChecksumMismatch);
        }
        CacheMetrics::get().misses.inc();
        std::lock_guard<std::mutex> lock(mu);
        ++counters.misses;
        return false;
    }
    if (report.version < kTraceFormatV3) {
        // Legacy entry: repair in place so the next load verifies
        // checksums. A failed rewrite is harmless — the old file
        // stays behind and keeps serving hits.
        if (store(workload, records, out)) {
            prophet_infof("trace-cache: upgraded %s v%u -> v%u",
                          file.c_str(), report.version,
                          kTraceFormatV3);
            CacheMetrics::get().upgrades.inc();
            std::lock_guard<std::mutex> lock(mu);
            ++counters.upgrades;
            --counters.stores; // the rewrite is not a caller store
        }
    }
    prophet_infof("trace-cache: hit %s (%zu records) <- %s",
                  workload.c_str(), out.size(), file.c_str());
    CacheMetrics::get().hits.inc();
    std::lock_guard<std::mutex> lock(mu);
    ++counters.hits;
    return true;
}

bool
TraceCache::store(const std::string &workload, std::size_t records,
                  const Trace &t)
{
    std::error_code ec;
    fs::create_directories(dirPath, ec);
    if (ec)
        return false;
    std::string final_path = path(workload, records);

    // Serialize writers across processes (and threads) sharing this
    // directory. The temp+rename protocol below is atomic on its
    // own; the lock keeps concurrent writers of the *same* entry
    // from doing redundant 100 MB writes and protects the
    // upgrade-rewrite and counter-file read-modify-writes.
    DirLock lock(dirPath);
    if (lock.contended()) {
        CacheMetrics::get().lockContention.inc();
        {
            std::lock_guard<std::mutex> guard(mu);
            ++counters.lockContention;
        }
        // The DirLock is held here: bump without re-locking.
        bumpCountersInDir(dirPath,
                          &PersistentCounters::lockContention, 1);
    }

    auto storeFailed = [this]() {
        CacheMetrics::get().storeFailures.inc();
        {
            std::lock_guard<std::mutex> guard(mu);
            ++counters.storeFailures;
        }
        bumpCountersInDir(dirPath,
                          &PersistentCounters::storeFailures, 1);
        return false;
    };

    // Fault point: a whole-store failure (e.g. the filesystem is
    // full before the first byte).
    if (fault::shouldFail("cache.store"))
        return storeFailed();

    // Unique temp name per store: the pid separates processes
    // sharing a cache directory (which the README allows) and the
    // counter separates concurrent stores within this process, so
    // two writers can never interleave into one temp file; rename
    // is atomic within the directory.
    static std::atomic<unsigned long> storeSeq{0};
    std::string tmp = final_path + ".tmp"
        + std::to_string(static_cast<unsigned long>(::getpid())) + "."
        + std::to_string(storeSeq.fetch_add(1));
    if (!saveBinary(t, tmp)) {
        // A failed write (ENOSPC, injected fault) must leave no
        // partial entry behind — remove the temp file; the final
        // name was never touched.
        fs::remove(tmp, ec);
        return storeFailed();
    }
    fs::rename(tmp, final_path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return storeFailed();
    }
    CacheMetrics::get().stores.inc();
    std::lock_guard<std::mutex> guard(mu);
    ++counters.stores;
    return true;
}

std::size_t
TraceCache::clear()
{
    std::size_t removed = 0;
    std::error_code ec;
    if (!fs::is_directory(dirPath, ec))
        return 0;
    for (const auto &de : fs::directory_iterator(dirPath, ec)) {
        // Also sweep ".ptrc.tmp<pid>.<tid>" leftovers from crashed
        // writers and ".ptrc.corrupt" quarantined entries; only
        // completed entries count toward the total.
        std::string name = de.path().filename().string();
        if (name.find(".ptrc") == std::string::npos)
            continue;
        bool completed = de.path().extension() == ".ptrc";
        if (fs::remove(de.path(), ec) && completed)
            ++removed;
    }
    return removed;
}

std::vector<TraceCache::Entry>
TraceCache::entries() const
{
    return listDir(dirPath, false);
}

std::vector<TraceCache::Entry>
TraceCache::quarantined() const
{
    return listDir(dirPath, true);
}

TraceCache::Stats
TraceCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counters;
}

TraceCache::PersistentCounters
TraceCache::persistentCounters() const
{
    return readCountersFile(dirPath);
}

} // namespace prophet::trace
