/**
 * @file
 * In-memory access trace: the interface between workload generators
 * and the simulator. Traces also expose an instruction count so the
 * timing model can compute IPC.
 *
 * Storage is structure-of-arrays: the record loop is bandwidth-bound,
 * and the hot consumers (System::run, kernel identification, the
 * trace-analysis passes) each read only a subset of the record
 * fields. Four parallel arrays — pc, byte address, precomputed line
 * address, and a packed instGap/flags word — let each consumer stream
 * exactly the bytes it needs, and let trace (de)serialization move
 * whole arrays with single bulk I/O calls. `operator[]` materializes
 * a TraceRecord by value so record-at-a-time call sites keep working
 * unchanged.
 */

#ifndef PROPHET_TRACE_TRACE_HH
#define PROPHET_TRACE_TRACE_HH

#include <algorithm>
#include <cstdint>
#include <cstddef>
#include <iterator>
#include <vector>

#include "common/no_init_allocator.hh"
#include "trace/record.hh"

namespace prophet::trace
{

/**
 * A whole-workload memory access trace. Appending maintains the total
 * retired-instruction count (memory instructions + instruction gaps).
 */
class Trace
{
  public:
    /**
     * Packed per-record metadata word: instGap in bits 0-15,
     * dependsOnPrev in bit 16, isWrite in bit 17. This is also the
     * on-disk encoding of the trace-cache v2 format's meta array
     * (every bit is defined, so bulk-written files are
     * deterministic).
     */
    static constexpr std::uint32_t kGapMask = 0xffffu;
    static constexpr std::uint32_t kDependsBit = 1u << 16;
    static constexpr std::uint32_t kWriteBit = 1u << 17;

    /**
     * Array type of the SoA columns. The no-init allocator matters
     * only to the bulk loader: `BulkVector<T> v(n)` sizes without
     * the value-init memset, so fread is the first touch of every
     * page. append() paths behave exactly like std::vector.
     */
    template <typename T>
    using BulkVector = std::vector<T, NoInitAllocator<T>>;

    /** Decode the instruction gap from a packed meta word. */
    static std::uint16_t
    gapOf(std::uint32_t meta)
    {
        return static_cast<std::uint16_t>(meta & kGapMask);
    }

    /** Decode dependsOnPrev from a packed meta word. */
    static bool
    dependsOf(std::uint32_t meta)
    {
        return (meta & kDependsBit) != 0;
    }

    /** Decode isWrite from a packed meta word. */
    static bool
    writeOf(std::uint32_t meta)
    {
        return (meta & kWriteBit) != 0;
    }

    /** Encode (gap, depends, write) into a packed meta word. */
    static std::uint32_t
    packMeta(std::uint16_t inst_gap, bool depends_on_prev,
             bool is_write)
    {
        return static_cast<std::uint32_t>(inst_gap)
            | (depends_on_prev ? kDependsBit : 0u)
            | (is_write ? kWriteBit : 0u);
    }

    Trace() = default;

    /** Reserve space for n records. */
    void
    reserve(std::size_t n)
    {
        pcs.reserve(n);
        addrs.reserve(n);
        lines.reserve(n);
        metas.reserve(n);
    }

    /** Append one record (primary form: no TraceRecord materialized). */
    void
    append(PC pc, Addr addr, std::uint16_t inst_gap = 1,
           bool depends_on_prev = false, bool is_write = false)
    {
        totalInsts += inst_gap + 1;
        pcs.push_back(pc);
        addrs.push_back(addr);
        lines.push_back(lineAddr(addr));
        metas.push_back(packMeta(inst_gap, depends_on_prev, is_write));
    }

    /** Append one record. */
    void
    append(const TraceRecord &rec)
    {
        append(rec.pc, rec.addr, rec.instGap, rec.dependsOnPrev,
               rec.isWrite);
    }

    /**
     * Adopt bulk-loaded arrays (trace-cache v2 loads). Line addresses
     * and the instruction count are recomputed, so only the three
     * stored arrays travel through I/O. @p metas_in words must use the
     * packMeta encoding; undefined bits are masked off.
     */
    void
    adopt(BulkVector<PC> pcs_in, BulkVector<Addr> addrs_in,
          BulkVector<std::uint32_t> metas_in)
    {
        pcs = std::move(pcs_in);
        addrs = std::move(addrs_in);
        metas = std::move(metas_in);
        const std::size_t n = addrs.size();
        lines.resize(n);
        // Single-purpose passes the compiler can vectorize (the
        // fused per-record loop stayed scalar): a pure u64 shift for
        // the line addresses, then mask + gap sum over the u32 meta
        // words. The sum accumulates into a 32-bit partial per chunk
        // — 32768 gaps of <= 0xffff cannot overflow — so the
        // reduction stays in vector width instead of widening every
        // element to u64.
        for (std::size_t i = 0; i < n; ++i)
            lines[i] = lineAddr(addrs[i]);
        constexpr std::uint32_t defined =
            kGapMask | kDependsBit | kWriteBit;
        constexpr std::size_t kSumChunk = 32768;
        std::uint64_t gaps = 0;
        for (std::size_t base = 0; base < n; base += kSumChunk) {
            const std::size_t end = std::min(n, base + kSumChunk);
            std::uint32_t part = 0;
            for (std::size_t i = base; i < end; ++i) {
                metas[i] &= defined;
                part += metas[i] & kGapMask;
            }
            gaps += part;
        }
        totalInsts = gaps + n;
    }

    /** Number of memory accesses. */
    std::size_t size() const { return pcs.size(); }

    /** True if the trace has no records. */
    bool empty() const { return pcs.empty(); }

    /** Materialize record i (by value; the storage is SoA). */
    TraceRecord
    operator[](std::size_t i) const
    {
        const std::uint32_t m = metas[i];
        return TraceRecord{pcs[i], addrs[i], gapOf(m), dependsOf(m),
                           writeOf(m)};
    }

    /** Total retired instructions represented by the trace. */
    std::uint64_t totalInstructions() const { return totalInsts; }

    // ---- SoA views (hot-loop consumers read these directly) ----

    /** PC of every record. */
    const PC *pcData() const { return pcs.data(); }

    /** Byte address of every record. */
    const Addr *addrData() const { return addrs.data(); }

    /** Precomputed line address (addr >> kLineShift) of every record. */
    const Addr *lineAddrData() const { return lines.data(); }

    /** Packed instGap/flags word of every record (see packMeta). */
    const std::uint32_t *metaData() const { return metas.data(); }

    /**
     * Iteration support: a proxy iterator materializing TraceRecords
     * on demand, so range-for call sites survived the SoA change.
     */
    class const_iterator
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = TraceRecord;
        using difference_type = std::ptrdiff_t;
        using pointer = const TraceRecord *;
        using reference = TraceRecord;

        const_iterator(const Trace *t, std::size_t i)
            : trace(t), index(i)
        {}

        TraceRecord operator*() const { return (*trace)[index]; }

        const_iterator &
        operator++()
        {
            ++index;
            return *this;
        }

        const_iterator
        operator++(int)
        {
            const_iterator prev = *this;
            ++index;
            return prev;
        }

        bool
        operator==(const const_iterator &o) const
        {
            return index == o.index;
        }

        bool
        operator!=(const const_iterator &o) const
        {
            return index != o.index;
        }

      private:
        const Trace *trace;
        std::size_t index;
    };

    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, size()}; }

  private:
    BulkVector<PC> pcs;
    BulkVector<Addr> addrs;
    BulkVector<Addr> lines;           ///< precomputed line addresses
    BulkVector<std::uint32_t> metas;  ///< packed instGap/flags
    std::uint64_t totalInsts = 0;
};

} // namespace prophet::trace

#endif // PROPHET_TRACE_TRACE_HH
