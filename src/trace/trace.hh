/**
 * @file
 * In-memory access trace: the interface between workload generators
 * and the simulator. Traces also expose an instruction count so the
 * timing model can compute IPC.
 */

#ifndef PROPHET_TRACE_TRACE_HH
#define PROPHET_TRACE_TRACE_HH

#include <cstdint>
#include <vector>

#include "trace/record.hh"

namespace prophet::trace
{

/**
 * A whole-workload memory access trace. Appending maintains the total
 * retired-instruction count (memory instructions + instruction gaps).
 */
class Trace
{
  public:
    Trace() = default;

    /** Reserve space for n records. */
    void reserve(std::size_t n) { records.reserve(n); }

    /** Append one record. */
    void
    append(const TraceRecord &rec)
    {
        totalInsts += rec.instGap + 1;
        records.push_back(rec);
    }

    /** Convenience append. */
    void
    append(PC pc, Addr addr, std::uint16_t inst_gap = 1,
           bool depends_on_prev = false, bool is_write = false)
    {
        append(TraceRecord{pc, addr, inst_gap, depends_on_prev,
                           is_write});
    }

    /** Number of memory accesses. */
    std::size_t size() const { return records.size(); }

    /** True if the trace has no records. */
    bool empty() const { return records.empty(); }

    /** Access record i. */
    const TraceRecord &operator[](std::size_t i) const
    {
        return records[i];
    }

    /** Total retired instructions represented by the trace. */
    std::uint64_t totalInstructions() const { return totalInsts; }

    /** Iteration support. */
    auto begin() const { return records.begin(); }
    auto end() const { return records.end(); }

  private:
    std::vector<TraceRecord> records;
    std::uint64_t totalInsts = 0;
};

} // namespace prophet::trace

#endif // PROPHET_TRACE_TRACE_HH
