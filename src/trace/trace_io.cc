#include "trace/trace_io.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "common/checksum.hh"
#include "common/fault_injection.hh"

namespace prophet::trace
{

namespace
{

constexpr char kMagic[4] = {'P', 'T', 'R', 'C'};

/** Bytes before the payload in the v1/v2 formats. */
constexpr long kHeaderBytes = 16;

/** v3 adds three u64 array checksums after the common header. */
constexpr long kV3HeaderBytes =
    kHeaderBytes + 3 * static_cast<long>(sizeof(std::uint64_t));

/** Packed v1 on-disk record (fixed layout, little-endian hosts). */
struct PackedRecord
{
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint16_t instGap;
    std::uint8_t flags; // bit0 depends, bit1 write
    std::uint8_t pad;
    // + 2 trailing padding bytes to the 8-byte alignment
};

/** Per-record payload bytes of the v2/v3 SoA formats. */
constexpr std::uint64_t kSoaRecordBytes =
    sizeof(std::uint64_t) * 2 + sizeof(std::uint32_t);

struct FileCloser
{
    void operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/**
 * The named fault points: injectedFread/injectedFwrite behave
 * exactly like a short read/write at the call site, so the recovery
 * paths under test are the real ones, not simulated copies.
 */
std::size_t
injectedFread(void *dst, std::size_t size, std::size_t n,
              std::FILE *f)
{
    if (fault::shouldFail("trace_io.fread"))
        return 0;
    return std::fread(dst, size, n, f);
}

std::size_t
injectedFwrite(const void *src, std::size_t size, std::size_t n,
               std::FILE *f)
{
    if (fault::shouldFail("trace_io.fwrite"))
        return 0; // simulated ENOSPC: nothing written
    return std::fwrite(src, size, n, f);
}

bool
writeHeader(std::FILE *f, std::uint32_t version, std::uint64_t count)
{
    return injectedFwrite(kMagic, 1, 4, f) == 4
        && injectedFwrite(&version, sizeof(version), 1, f) == 1
        && injectedFwrite(&count, sizeof(count), 1, f) == 1;
}

/**
 * Payload record capacity of the file behind @p f, used to validate
 * the untrusted header count before any allocation: a corrupted
 * header fails cleanly instead of throwing std::length_error.
 * Leaves the file position at the start of the payload.
 */
bool
payloadRecords(std::FILE *f, long header_bytes,
               std::uint64_t record_bytes, std::uint64_t &max_records)
{
    if (std::fseek(f, 0, SEEK_END) != 0)
        return false;
    long file_size = std::ftell(f);
    if (file_size < header_bytes
        || std::fseek(f, header_bytes, SEEK_SET) != 0)
        return false;
    max_records =
        static_cast<std::uint64_t>(file_size - header_bytes)
        / record_bytes;
    return true;
}

/**
 * Shared v2/v3 SoA payload reader. For v3, @p checksums holds the
 * three header checksums and each array is verified after the bulk
 * read; a mismatch reports ChecksumMismatch at the offending
 * array's offset.
 */
void
loadSoa(Trace &out, std::FILE *f, std::uint64_t count,
        long header_bytes, const std::uint64_t *checksums,
        LoadReport &report)
{
    std::uint64_t max_records = 0;
    if (!payloadRecords(f, header_bytes, kSoaRecordBytes,
                        max_records)) {
        report.status = LoadStatus::Truncated;
        return;
    }
    if (count > max_records) {
        report.status = LoadStatus::Truncated;
        report.offset = static_cast<std::uint64_t>(header_bytes);
        return;
    }
    // BulkVector sizing leaves the elements uninitialized: fread is
    // the first touch of every page, not a value-init memset.
    Trace::BulkVector<PC> pcs(count);
    Trace::BulkVector<Addr> addrs(count);
    Trace::BulkVector<std::uint32_t> metas(count);
    struct ArrayDesc
    {
        void *data;
        std::size_t elemSize;
    };
    const ArrayDesc arrays[3] = {
        {pcs.data(), sizeof(PC)},
        {addrs.data(), sizeof(Addr)},
        {metas.data(), sizeof(std::uint32_t)},
    };
    std::uint64_t offset = static_cast<std::uint64_t>(header_bytes);
    for (int a = 0; a < 3; ++a) {
        if (count > 0
            && injectedFread(arrays[a].data, arrays[a].elemSize,
                             count, f)
                != count) {
            report.status = LoadStatus::ReadFail;
            report.offset = offset;
            return;
        }
        if (checksums) {
            std::uint64_t sum = fnv1a64(
                arrays[a].data, arrays[a].elemSize * count);
            if (sum != checksums[a]) {
                report.status = LoadStatus::ChecksumMismatch;
                report.offset = offset;
                return;
            }
        }
        offset += arrays[a].elemSize * count;
    }
    out.adopt(std::move(pcs), std::move(addrs), std::move(metas));
    report.status = LoadStatus::Ok;
}

void
loadV1(Trace &out, std::FILE *f, std::uint64_t count,
       LoadReport &report)
{
    std::uint64_t max_records = 0;
    if (!payloadRecords(f, kHeaderBytes, sizeof(PackedRecord),
                        max_records)
        || count > max_records) {
        report.status = LoadStatus::Truncated;
        return;
    }
    out.reserve(count);
    // Bulk-read in chunks: the dominant cost of the old loader was
    // one fread call per record.
    constexpr std::size_t kChunk = 4096;
    std::vector<PackedRecord> buf(
        std::min<std::uint64_t>(count, kChunk));
    std::uint64_t done = 0;
    while (done < count) {
        std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(count - done, kChunk));
        if (injectedFread(buf.data(), sizeof(PackedRecord), want, f)
            != want) {
            report.status = LoadStatus::ReadFail;
            report.offset = static_cast<std::uint64_t>(kHeaderBytes)
                + done * sizeof(PackedRecord);
            return;
        }
        for (std::size_t i = 0; i < want; ++i) {
            const PackedRecord &p = buf[i];
            out.append(p.pc, p.addr, p.instGap, p.flags & 1,
                       p.flags & 2);
        }
        done += want;
    }
    report.status = LoadStatus::Ok;
}

bool
saveSoa(const Trace &t, const std::string &path,
        std::uint32_t version)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;
    const std::uint64_t count = t.size();
    if (!writeHeader(f.get(), version, count))
        return false;
    if (version >= kTraceFormatV3) {
        const std::uint64_t checksums[3] = {
            fnv1a64(t.pcData(), sizeof(PC) * count),
            fnv1a64(t.addrData(), sizeof(Addr) * count),
            fnv1a64(t.metaData(), sizeof(std::uint32_t) * count),
        };
        if (injectedFwrite(checksums, sizeof(std::uint64_t), 3,
                           f.get())
            != 3)
            return false;
    }
    if (count == 0)
        return true;
    if (injectedFwrite(t.pcData(), sizeof(PC), count, f.get())
        != count)
        return false;
    if (injectedFwrite(t.addrData(), sizeof(Addr), count, f.get())
        != count)
        return false;
    if (injectedFwrite(t.metaData(), sizeof(std::uint32_t), count,
                       f.get())
        != count)
        return false;
    return true;
}

} // anonymous namespace

const char *
loadStatusName(LoadStatus status)
{
    switch (status) {
      case LoadStatus::Ok:
        return "ok";
      case LoadStatus::OpenFail:
        return "open-fail";
      case LoadStatus::BadHeader:
        return "bad-header";
      case LoadStatus::Truncated:
        return "truncated";
      case LoadStatus::ReadFail:
        return "read-fail";
      case LoadStatus::ChecksumMismatch:
        return "checksum-mismatch";
    }
    return "unknown";
}

bool
saveBinary(const Trace &t, const std::string &path)
{
    return saveSoa(t, path, kTraceFormatV3);
}

bool
saveBinaryV2(const Trace &t, const std::string &path)
{
    return saveSoa(t, path, kTraceFormatV2);
}

bool
saveBinaryV1(const Trace &t, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;
    const std::uint64_t count = t.size();
    if (!writeHeader(f.get(), kTraceFormatV1, count))
        return false;
    for (std::uint64_t i = 0; i < count; ++i) {
        const TraceRecord rec = t[i];
        // memset covers the tail padding sizeof leaves after `pad`:
        // brace-init zeroes members but not padding bytes, which
        // would leak uninitialized stack bytes into the file.
        PackedRecord p;
        std::memset(&p, 0, sizeof(p));
        p.pc = rec.pc;
        p.addr = rec.addr;
        p.instGap = rec.instGap;
        p.flags = static_cast<std::uint8_t>(
            (rec.dependsOnPrev ? 1 : 0) | (rec.isWrite ? 2 : 0));
        if (injectedFwrite(&p, sizeof(p), 1, f.get()) != 1)
            return false;
    }
    return true;
}

bool
loadBinary(Trace &out, const std::string &path, LoadReport &report)
{
    out = Trace{};
    report = LoadReport{};
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f) {
        report.status = LoadStatus::OpenFail;
        return false;
    }
    // Header reads stay on plain fread: the "trace_io.fread" fault
    // point covers *payload* reads (a short header is BadHeader
    // territory, and must not be conflated with a transient I/O
    // error the caller might retry).
    char magic[4];
    std::uint32_t version = 0;
    std::uint64_t count = 0;
    if (std::fread(magic, 1, 4, f.get()) != 4
        || std::memcmp(magic, kMagic, 4) != 0
        || std::fread(&version, sizeof(version), 1, f.get()) != 1
        || std::fread(&count, sizeof(count), 1, f.get()) != 1) {
        report.status = LoadStatus::BadHeader;
        report.offset = 0;
        return false;
    }
    report.version = version;

    if (version == kTraceFormatV3) {
        std::uint64_t checksums[3];
        if (std::fread(checksums, sizeof(std::uint64_t), 3, f.get())
            != 3) {
            report.status = LoadStatus::BadHeader;
            report.offset = static_cast<std::uint64_t>(kHeaderBytes);
        } else {
            loadSoa(out, f.get(), count, kV3HeaderBytes, checksums,
                    report);
        }
    } else if (version == kTraceFormatV2) {
        loadSoa(out, f.get(), count, kHeaderBytes, nullptr, report);
    } else if (version == kTraceFormatV1) {
        loadV1(out, f.get(), count, report);
    } else {
        report.status = LoadStatus::BadHeader;
        report.offset = 4; // the version field
    }
    if (!report.ok()) {
        out = Trace{};
        return false;
    }
    return true;
}

bool
loadBinary(Trace &out, const std::string &path,
           std::uint32_t *version_out)
{
    LoadReport report;
    if (!loadBinary(out, path, report))
        return false;
    if (version_out)
        *version_out = report.version;
    return true;
}

bool
saveText(const Trace &t, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "w"));
    if (!f)
        return false;
    for (const auto &rec : t) {
        if (std::fprintf(f.get(),
                         "%" PRIx64 " %" PRIx64 " %u %u %u\n",
                         rec.pc, rec.addr, rec.instGap,
                         rec.dependsOnPrev ? 1 : 0,
                         rec.isWrite ? 1 : 0) < 0)
            return false;
    }
    return true;
}

bool
loadText(Trace &out, const std::string &path)
{
    out = Trace{};
    FilePtr f(std::fopen(path.c_str(), "r"));
    if (!f)
        return false;
    std::uint64_t pc, addr;
    unsigned gap, dep, wr;
    while (std::fscanf(f.get(),
                       "%" SCNx64 " %" SCNx64 " %u %u %u\n", &pc,
                       &addr, &gap, &dep, &wr) == 5) {
        out.append(pc, addr, static_cast<std::uint16_t>(gap), dep != 0,
                   wr != 0);
    }
    return true;
}

} // namespace prophet::trace
