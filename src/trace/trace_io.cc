#include "trace/trace_io.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace prophet::trace
{

namespace
{

constexpr char kMagic[4] = {'P', 'T', 'R', 'C'};

/** Bytes before the payload in both formats. */
constexpr long kHeaderBytes = 16;

/** Packed v1 on-disk record (fixed layout, little-endian hosts). */
struct PackedRecord
{
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint16_t instGap;
    std::uint8_t flags; // bit0 depends, bit1 write
    std::uint8_t pad;
    // + 2 trailing padding bytes to the 8-byte alignment
};

/** Per-record payload bytes of the v2 SoA format. */
constexpr std::uint64_t kV2RecordBytes =
    sizeof(std::uint64_t) * 2 + sizeof(std::uint32_t);

struct FileCloser
{
    void operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool
writeHeader(std::FILE *f, std::uint32_t version, std::uint64_t count)
{
    return std::fwrite(kMagic, 1, 4, f) == 4
        && std::fwrite(&version, sizeof(version), 1, f) == 1
        && std::fwrite(&count, sizeof(count), 1, f) == 1;
}

/**
 * Payload record capacity of the file behind @p f, used to validate
 * the untrusted header count before any allocation: a corrupted
 * header fails cleanly instead of throwing std::length_error.
 * Leaves the file position at the start of the payload.
 */
bool
payloadRecords(std::FILE *f, std::uint64_t record_bytes,
               std::uint64_t &max_records)
{
    if (std::fseek(f, 0, SEEK_END) != 0)
        return false;
    long file_size = std::ftell(f);
    if (file_size < kHeaderBytes
        || std::fseek(f, kHeaderBytes, SEEK_SET) != 0)
        return false;
    max_records =
        static_cast<std::uint64_t>(file_size - kHeaderBytes)
        / record_bytes;
    return true;
}

bool
loadV2(Trace &out, std::FILE *f, std::uint64_t count)
{
    std::uint64_t max_records = 0;
    if (!payloadRecords(f, kV2RecordBytes, max_records)
        || count > max_records)
        return false;
    // BulkVector sizing leaves the elements uninitialized: fread is
    // the first touch of every page, not a value-init memset.
    Trace::BulkVector<PC> pcs(count);
    Trace::BulkVector<Addr> addrs(count);
    Trace::BulkVector<std::uint32_t> metas(count);
    if (count > 0) {
        if (std::fread(pcs.data(), sizeof(PC), count, f) != count)
            return false;
        if (std::fread(addrs.data(), sizeof(Addr), count, f) != count)
            return false;
        if (std::fread(metas.data(), sizeof(std::uint32_t), count, f)
            != count)
            return false;
    }
    out.adopt(std::move(pcs), std::move(addrs), std::move(metas));
    return true;
}

bool
loadV1(Trace &out, std::FILE *f, std::uint64_t count)
{
    std::uint64_t max_records = 0;
    if (!payloadRecords(f, sizeof(PackedRecord), max_records)
        || count > max_records)
        return false;
    out.reserve(count);
    // Bulk-read in chunks: the dominant cost of the old loader was
    // one fread call per record.
    constexpr std::size_t kChunk = 4096;
    std::vector<PackedRecord> buf(
        std::min<std::uint64_t>(count, kChunk));
    std::uint64_t done = 0;
    while (done < count) {
        std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(count - done, kChunk));
        if (std::fread(buf.data(), sizeof(PackedRecord), want, f)
            != want)
            return false;
        for (std::size_t i = 0; i < want; ++i) {
            const PackedRecord &p = buf[i];
            out.append(p.pc, p.addr, p.instGap, p.flags & 1,
                       p.flags & 2);
        }
        done += want;
    }
    return true;
}

} // anonymous namespace

bool
saveBinary(const Trace &t, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;
    const std::uint64_t count = t.size();
    if (!writeHeader(f.get(), kTraceFormatV2, count))
        return false;
    if (count == 0)
        return true;
    if (std::fwrite(t.pcData(), sizeof(PC), count, f.get()) != count)
        return false;
    if (std::fwrite(t.addrData(), sizeof(Addr), count, f.get())
        != count)
        return false;
    if (std::fwrite(t.metaData(), sizeof(std::uint32_t), count,
                    f.get())
        != count)
        return false;
    return true;
}

bool
saveBinaryV1(const Trace &t, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;
    const std::uint64_t count = t.size();
    if (!writeHeader(f.get(), kTraceFormatV1, count))
        return false;
    for (std::uint64_t i = 0; i < count; ++i) {
        const TraceRecord rec = t[i];
        // memset covers the tail padding sizeof leaves after `pad`:
        // brace-init zeroes members but not padding bytes, which
        // would leak uninitialized stack bytes into the file.
        PackedRecord p;
        std::memset(&p, 0, sizeof(p));
        p.pc = rec.pc;
        p.addr = rec.addr;
        p.instGap = rec.instGap;
        p.flags = static_cast<std::uint8_t>(
            (rec.dependsOnPrev ? 1 : 0) | (rec.isWrite ? 2 : 0));
        if (std::fwrite(&p, sizeof(p), 1, f.get()) != 1)
            return false;
    }
    return true;
}

bool
loadBinary(Trace &out, const std::string &path,
           std::uint32_t *version_out)
{
    out = Trace{};
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return false;
    char magic[4];
    std::uint32_t version = 0;
    std::uint64_t count = 0;
    if (std::fread(magic, 1, 4, f.get()) != 4
        || std::memcmp(magic, kMagic, 4) != 0)
        return false;
    if (std::fread(&version, sizeof(version), 1, f.get()) != 1)
        return false;
    if (std::fread(&count, sizeof(count), 1, f.get()) != 1)
        return false;

    bool ok = false;
    if (version == kTraceFormatV2)
        ok = loadV2(out, f.get(), count);
    else if (version == kTraceFormatV1)
        ok = loadV1(out, f.get(), count);
    if (!ok) {
        out = Trace{};
        return false;
    }
    if (version_out)
        *version_out = version;
    return true;
}

bool
saveText(const Trace &t, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "w"));
    if (!f)
        return false;
    for (const auto &rec : t) {
        if (std::fprintf(f.get(),
                         "%" PRIx64 " %" PRIx64 " %u %u %u\n",
                         rec.pc, rec.addr, rec.instGap,
                         rec.dependsOnPrev ? 1 : 0,
                         rec.isWrite ? 1 : 0) < 0)
            return false;
    }
    return true;
}

bool
loadText(Trace &out, const std::string &path)
{
    out = Trace{};
    FilePtr f(std::fopen(path.c_str(), "r"));
    if (!f)
        return false;
    std::uint64_t pc, addr;
    unsigned gap, dep, wr;
    while (std::fscanf(f.get(),
                       "%" SCNx64 " %" SCNx64 " %u %u %u\n", &pc,
                       &addr, &gap, &dep, &wr) == 5) {
        out.append(pc, addr, static_cast<std::uint16_t>(gap), dep != 0,
                   wr != 0);
    }
    return true;
}

} // namespace prophet::trace
