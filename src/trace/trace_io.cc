#include "trace/trace_io.hh"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>

namespace prophet::trace
{

namespace
{

constexpr char kMagic[4] = {'P', 'T', 'R', 'C'};
constexpr std::uint32_t kVersion = 1;

/** Packed on-disk record (fixed layout, little-endian hosts). */
struct PackedRecord
{
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint16_t instGap;
    std::uint8_t flags; // bit0 depends, bit1 write
    std::uint8_t pad = 0;
};

struct FileCloser
{
    void operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // anonymous namespace

bool
saveBinary(const Trace &t, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;
    std::uint64_t count = t.size();
    if (std::fwrite(kMagic, 1, 4, f.get()) != 4)
        return false;
    if (std::fwrite(&kVersion, sizeof(kVersion), 1, f.get()) != 1)
        return false;
    if (std::fwrite(&count, sizeof(count), 1, f.get()) != 1)
        return false;
    for (const auto &rec : t) {
        PackedRecord p{rec.pc, rec.addr, rec.instGap,
                       static_cast<std::uint8_t>(
                           (rec.dependsOnPrev ? 1 : 0)
                           | (rec.isWrite ? 2 : 0))};
        if (std::fwrite(&p, sizeof(p), 1, f.get()) != 1)
            return false;
    }
    return true;
}

bool
loadBinary(Trace &out, const std::string &path)
{
    out = Trace{};
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return false;
    char magic[4];
    std::uint32_t version = 0;
    std::uint64_t count = 0;
    if (std::fread(magic, 1, 4, f.get()) != 4
        || std::memcmp(magic, kMagic, 4) != 0)
        return false;
    if (std::fread(&version, sizeof(version), 1, f.get()) != 1
        || version != kVersion)
        return false;
    if (std::fread(&count, sizeof(count), 1, f.get()) != 1)
        return false;
    // The count comes from an untrusted file: cap it by what the
    // payload can actually hold before reserving, so a corrupted
    // header fails cleanly instead of throwing std::length_error.
    constexpr long kHeaderBytes = 16;
    if (std::fseek(f.get(), 0, SEEK_END) != 0)
        return false;
    long file_size = std::ftell(f.get());
    if (file_size < kHeaderBytes
        || std::fseek(f.get(), kHeaderBytes, SEEK_SET) != 0)
        return false;
    std::uint64_t max_records =
        static_cast<std::uint64_t>(file_size - kHeaderBytes)
        / sizeof(PackedRecord);
    if (count > max_records)
        return false;
    out.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        PackedRecord p;
        if (std::fread(&p, sizeof(p), 1, f.get()) != 1) {
            out = Trace{};
            return false;
        }
        out.append(p.pc, p.addr, p.instGap, p.flags & 1, p.flags & 2);
    }
    return true;
}

bool
saveText(const Trace &t, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "w"));
    if (!f)
        return false;
    for (const auto &rec : t) {
        if (std::fprintf(f.get(),
                         "%" PRIx64 " %" PRIx64 " %u %u %u\n",
                         rec.pc, rec.addr, rec.instGap,
                         rec.dependsOnPrev ? 1 : 0,
                         rec.isWrite ? 1 : 0) < 0)
            return false;
    }
    return true;
}

bool
loadText(Trace &out, const std::string &path)
{
    out = Trace{};
    FilePtr f(std::fopen(path.c_str(), "r"));
    if (!f)
        return false;
    std::uint64_t pc, addr;
    unsigned gap, dep, wr;
    while (std::fscanf(f.get(),
                       "%" SCNx64 " %" SCNx64 " %u %u %u\n", &pc,
                       &addr, &gap, &dep, &wr) == 5) {
        out.append(pc, addr, static_cast<std::uint16_t>(gap), dep != 0,
                   wr != 0);
    }
    return true;
}

} // namespace prophet::trace
