/**
 * @file
 * The serve wire protocol: length-prefixed JSON frames over a Unix
 * stream socket. One frame is
 *
 *   u32 magic "PFRM" (little-endian 0x4d524650)
 *   u32 payload length in bytes (little-endian)
 *   payload: one JSON document (driver/json)
 *
 * Hardening invariants this layer owns:
 *  - the length is sanity-checked against the configured cap BEFORE
 *    any buffer is allocated — a hostile or corrupt 4 GiB prefix
 *    costs an 8-byte header read, never an allocation;
 *  - a bad magic or over-cap length classifies as Malformed and the
 *    caller closes the connection (framing is lost; resyncing a
 *    stream mid-garbage is guesswork);
 *  - every read/write runs under a poll(2) deadline so a stalled
 *    peer cannot wedge a daemon worker;
 *  - writes use send(MSG_NOSIGNAL): a client that died mid-response
 *    surfaces as an error return, not a SIGPIPE.
 *
 * The fault sites "serve.frame_read" and "serve.frame_write"
 * (common/fault_injection.hh) fire here so tests exercise the
 * daemon's I/O failure paths deterministically.
 */

#ifndef PROPHET_SERVE_PROTOCOL_HH
#define PROPHET_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

namespace prophet::serve
{

/** "PFRM" little-endian: the first 4 bytes of every frame. */
constexpr std::uint32_t kFrameMagic = 0x4d524650u;

/** Default payload cap (16 MiB) — ServeOptions can lower or raise. */
constexpr std::uint32_t kDefaultMaxFrameBytes = 16u << 20;

/** What one readFrame attempt produced. */
struct ReadOutcome
{
    enum class Kind
    {
        Frame,     ///< payload holds one complete JSON document
        Eof,       ///< clean close before any header byte
        Timeout,   ///< the poll deadline expired mid-frame
        Malformed, ///< bad magic, over-cap length, truncated frame
        IoError,   ///< read(2) failed (or serve.frame_read fired)
    };

    Kind kind = Kind::IoError;
    std::string payload; ///< set only for Kind::Frame
    std::string error;   ///< human-readable detail for non-Frame
};

/**
 * Read one frame from @p fd. @p max_bytes caps the advertised
 * payload length (checked before allocating); @p timeout_ms bounds
 * the whole frame ( < 0 waits forever).
 */
ReadOutcome readFrame(int fd, std::uint32_t max_bytes,
                      int timeout_ms);

/**
 * Write one frame to @p fd. Returns false on any failure (peer gone,
 * poll deadline expired, serve.frame_write fired); never raises
 * SIGPIPE. Payloads over UINT32_MAX are refused.
 */
bool writeFrame(int fd, const std::string &payload, int timeout_ms);

} // namespace prophet::serve

#endif // PROPHET_SERVE_PROTOCOL_HH
