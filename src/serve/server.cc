#include "serve/server.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/file.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.hh"
#include "common/exit_codes.hh"
#include "common/fault_injection.hh"
#include "common/log.hh"
#include "common/metrics.hh"
#include "driver/driver.hh"
#include "driver/sink.hh"

namespace prophet::serve
{

namespace json = driver::json;

namespace
{

/** Shorthand: one {"type":"error",...} response document. */
std::string
errorFramePayload(ErrorCode code, const std::string &message,
                  long retry_after_ms = -1)
{
    json::Value o = json::Value::makeObject();
    o.set("type", json::Value("error"));
    o.set("code", json::Value(errorCodeName(code)));
    o.set("message", json::Value(message));
    o.set("exit_code",
          json::Value(static_cast<int>(exitCodeForError(code))));
    if (retry_after_ms >= 0)
        o.set("retry_after_ms",
              json::Value(static_cast<double>(retry_after_ms)));
    return json::dump(o);
}

/**
 * Refuse a connection with @p payload (overload shed, drain). The
 * client is typically mid-write of its request when the refusal is
 * decided, so its frame is drained first: closing with unread bytes
 * in the kernel buffer turns the close into an RST that can destroy
 * the refusal frame before the client reads it — and a structured
 * shed that the client never sees is exactly the silent drop this
 * path exists to prevent.
 */
void
refuseConnection(int fd, const std::string &payload,
                 std::uint32_t max_bytes)
{
    readFrame(fd, max_bytes, 250);
    writeFrame(fd, payload, 1000);
    ::close(fd);
}

const char *
sinkTypeName(driver::SinkSpec::Kind kind)
{
    switch (kind) {
      case driver::SinkSpec::Kind::Table:
        return "table";
      case driver::SinkSpec::Kind::JsonFile:
        return "json";
      case driver::SinkSpec::Kind::CsvFile:
        return "csv";
    }
    return "table";
}

} // anonymous namespace

std::size_t
currentRssMb()
{
    std::FILE *f = std::fopen("/proc/self/statm", "r");
    if (!f)
        return 0;
    unsigned long size_pages = 0, rss_pages = 0;
    const int n =
        std::fscanf(f, "%lu %lu", &size_pages, &rss_pages);
    std::fclose(f);
    if (n != 2)
        return 0;
    const long page = ::sysconf(_SC_PAGESIZE);
    const std::size_t bytes = static_cast<std::size_t>(rss_pages)
        * static_cast<std::size_t>(page > 0 ? page : 4096);
    return bytes >> 20;
}

ServeDaemon::ServeDaemon(ServeOptions opts) : opts(std::move(opts))
{
    if (this->opts.workers == 0)
        this->opts.workers = 1;
    pidfilePath = this->opts.socketPath + ".pid";
}

ServeDaemon::~ServeDaemon()
{
    drainAndStop();
}

void
ServeDaemon::start()
{
    ErrorContext ctx;
    ctx.path = opts.socketPath;

    // Singleton guard: the flock on <socket>.pid outlives any crash
    // (the kernel drops it with the process), so "lock held" is the
    // one reliable liveness signal — the socket file existing is
    // not, a crashed daemon leaves it behind.
    pidfileFd = ::open(pidfilePath.c_str(), O_RDWR | O_CREAT, 0644);
    if (pidfileFd < 0)
        throw Error(ErrorCode::Internal, "cannot open pidfile "
                    + pidfilePath + ": " + std::strerror(errno),
                    std::move(ctx));
    if (::flock(pidfileFd, LOCK_EX | LOCK_NB) != 0) {
        char buf[32] = {0};
        const ssize_t n = ::read(pidfileFd, buf, sizeof(buf) - 1);
        ::close(pidfileFd);
        pidfileFd = -1;
        std::string who =
            n > 0 ? std::string(buf, static_cast<std::size_t>(n))
                  : std::string("unknown pid");
        while (!who.empty()
               && (who.back() == '\n' || who.back() == ' '))
            who.pop_back();
        throw Error(ErrorCode::SocketBusy,
                    "a live prophet serve daemon (pid " + who
                        + ") already owns this socket",
                    std::move(ctx));
    }
    char pid_buf[32];
    std::snprintf(pid_buf, sizeof(pid_buf), "%ld\n",
                  static_cast<long>(::getpid()));
    if (::ftruncate(pidfileFd, 0) != 0
        || ::pwrite(pidfileFd, pid_buf, std::strlen(pid_buf), 0) < 0)
        prophet_warnf("serve: cannot record pid in %s",
                      pidfilePath.c_str());

    // Holding the lock proves nothing live owns the socket path: a
    // leftover file is a stale crash artifact, removed and rebound.
    if (::access(opts.socketPath.c_str(), F_OK) == 0) {
        prophet_infof("serve: removing stale socket %s",
                      opts.socketPath.c_str());
        ::unlink(opts.socketPath.c_str());
    }

    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (opts.socketPath.size() >= sizeof(addr.sun_path))
        throw Error(ErrorCode::Internal,
                    "socket path exceeds the AF_UNIX limit",
                    std::move(ctx));
    std::memcpy(addr.sun_path, opts.socketPath.c_str(),
                opts.socketPath.size() + 1);

    listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0)
        throw Error(ErrorCode::Internal, std::string("socket: ")
                    + std::strerror(errno), std::move(ctx));
    if (::bind(listenFd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0
        || ::listen(listenFd, 64) != 0) {
        const std::string why = std::strerror(errno);
        ::close(listenFd);
        listenFd = -1;
        throw Error(ErrorCode::Internal, "cannot bind " + opts.socketPath
                    + ": " + why, std::move(ctx));
    }

    if (opts.traceCache != 0) {
        try {
            cache = std::make_shared<trace::TraceCache>(
                opts.traceCacheDir);
        } catch (const std::exception &e) {
            prophet_warnf("serve: trace cache unavailable (%s); "
                          "running without it", e.what());
        }
    }

    startTime = std::chrono::steady_clock::now();
    metrics::gauge("serve.active").set(0);
    stopping = false;
    acceptor = std::thread([this] { acceptLoop(); });
    for (unsigned i = 0; i < opts.workers; ++i)
        workers.emplace_back([this] { workerLoop(); });
    monitor = std::thread([this] { monitorLoop(); });
    started = true;
    prophet_infof("serve: listening on %s (%u worker%s, queue %zu)",
                  opts.socketPath.c_str(), opts.workers,
                  opts.workers == 1 ? "" : "s", opts.maxQueue);
}

void
ServeDaemon::acceptLoop()
{
    static metrics::Counter &accepted =
        metrics::counter("serve.accepted");
    static metrics::Counter &accept_errors =
        metrics::counter("serve.accept_errors");
    static metrics::Counter &rejected =
        metrics::counter("serve.rejected");
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(mu);
            if (stopping)
                return;
        }
        struct pollfd pfd;
        pfd.fd = listenFd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int rc = ::poll(&pfd, 1, 100);
        if (rc <= 0)
            continue;
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno != EINTR && errno != EAGAIN)
                accept_errors.inc();
            continue;
        }
        if (fault::shouldFail("serve.accept")) {
            // Containment contract: an accept-path fault costs that
            // one connection, never the acceptor.
            accept_errors.inc();
            ::close(fd);
            continue;
        }
        accepted.inc();
        std::size_t backlog;
        bool shed = false, draining = false;
        {
            std::lock_guard<std::mutex> lock(mu);
            if (stopping) {
                draining = true;
            } else if (queue.size() >= opts.maxQueue) {
                shed = true;
            } else {
                queue.push_back(fd);
            }
            backlog = queue.size() + active.size();
        }
        // notify_all, not notify_one: the monitor thread waits on
        // this cv too, and a notify_one it swallows would strand the
        // queued connection until the next accept.
        cv.notify_all();
        if (draining) {
            refuseConnection(fd,
                             errorFramePayload(ErrorCode::Cancelled,
                                               "daemon is draining"),
                             opts.maxFrameBytes);
            continue;
        }
        if (shed) {
            // Explicit load shedding: the structured refusal with a
            // backlog-scaled retry hint IS the overload behaviour —
            // a client must never hang on a silently dropped
            // connection.
            rejected.inc();
            refuseConnection(
                fd,
                errorFramePayload(
                    ErrorCode::ServerOverloaded,
                    "request queue is full; retry later",
                    static_cast<long>(250 * (backlog + 1))),
                opts.maxFrameBytes);
            continue;
        }
    }
}

void
ServeDaemon::workerLoop()
{
    static metrics::Gauge &active_gauge =
        metrics::gauge("serve.active");
    for (;;) {
        int fd;
        auto req = std::make_shared<ActiveRequest>();
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [this] {
                return stopping || !queue.empty();
            });
            if (queue.empty()) {
                if (stopping)
                    return;
                continue;
            }
            fd = queue.front();
            queue.pop_front();
            req->fd = fd;
            active.push_back(req);
        }
        active_gauge.add(1);
        handleConnection(fd);
        {
            std::lock_guard<std::mutex> lock(mu);
            active.erase(
                std::remove(active.begin(), active.end(), req),
                active.end());
        }
        active_gauge.add(-1);
        ::close(fd);
    }
}

void
ServeDaemon::handleConnection(int fd)
{
    static metrics::Counter &requests =
        metrics::counter("serve.requests");
    static metrics::Counter &protocol_errors =
        metrics::counter("serve.protocol_errors");
    static metrics::Histogram &latency =
        metrics::histogram("serve.request_ns");

    ReadOutcome frame =
        readFrame(fd, opts.maxFrameBytes, opts.ioTimeoutMs);
    switch (frame.kind) {
      case ReadOutcome::Kind::Frame:
        break;
      case ReadOutcome::Kind::Eof:
        return; // connected and left; not an error
      case ReadOutcome::Kind::Timeout:
      case ReadOutcome::Kind::IoError:
        protocol_errors.inc();
        return; // nothing sane to answer on a dead/stalled stream
      case ReadOutcome::Kind::Malformed:
        protocol_errors.inc();
        writeFrame(fd,
                   errorFramePayload(ErrorCode::ProtocolError,
                                     frame.error),
                   opts.ioTimeoutMs);
        return;
    }

    requests.inc();
    metrics::ScopedTimer timer(latency);

    json::Value req;
    std::string perr;
    if (!json::parse(frame.payload, req, &perr) || !req.isObject()) {
        protocol_errors.inc();
        writeFrame(fd,
                   errorFramePayload(ErrorCode::ProtocolError,
                                     "request is not a JSON object"
                                     + (perr.empty()
                                            ? std::string()
                                            : ": " + perr)),
                   opts.ioTimeoutMs);
        return;
    }
    const json::Value *type = req.find("type");
    const std::string kind =
        type && type->isString() ? type->asString() : "";

    if (kind == "ping") {
        json::Value o = json::Value::makeObject();
        o.set("type", json::Value("pong"));
        writeFrame(fd, json::dump(o), opts.ioTimeoutMs);
        return;
    }
    if (kind == "health") {
        handleHealth(fd);
        return;
    }
    if (kind == "run") {
        // Find our own ActiveRequest (registered by workerLoop) so
        // the run can ride its cancellation token.
        std::shared_ptr<ActiveRequest> self;
        {
            std::lock_guard<std::mutex> lock(mu);
            for (const auto &a : active)
                if (a->fd == fd)
                    self = a;
        }
        handleRun(fd, req, std::move(self));
        return;
    }
    protocol_errors.inc();
    writeFrame(fd,
               errorFramePayload(ErrorCode::ProtocolError,
                                 "unknown request type \"" + kind
                                     + "\""),
               opts.ioTimeoutMs);
}

sim::Runner &
ServeDaemon::residentRunner(const driver::ExperimentSpec &spec,
                            std::size_t records)
{
    // The key mirrors exactly what baseConfig() + the record count
    // feed the Runner: same tuple, same traces and baselines.
    std::string key = spec.l1;
    key += "/ch" + std::to_string(spec.dramChannels);
    key += "/w"
        + (spec.warmupRecords == driver::ExperimentSpec::kWarmupDefault
               ? std::string("default")
               : std::to_string(spec.warmupRecords));
    key += "/r" + std::to_string(records);
    if (spec.sampling.enabled) {
        key += "/s" + std::to_string(spec.sampling.warmupRecords)
            + ":" + std::to_string(spec.sampling.windowRecords) + ":"
            + std::to_string(spec.sampling.intervalRecords) + ":"
            + std::to_string(spec.sampling.offset);
    }
    auto it = runners.find(key);
    if (it != runners.end())
        return *it->second;
    auto r =
        std::make_unique<sim::Runner>(spec.baseConfig(), records);
    if (cache && spec.traceCache && opts.traceCache != 0)
        r->setTraceCache(cache);
    sim::Runner &ref = *r;
    runners.emplace(std::move(key), std::move(r));
    metrics::counter("serve.runners_created").inc();
    return ref;
}

void
ServeDaemon::handleRun(int fd, const json::Value &req,
                       std::shared_ptr<ActiveRequest> self)
{
    driver::ExperimentSpec spec;
    try {
        const json::Value *spec_text = req.find("spec_text");
        const json::Value *spec_obj = req.find("spec");
        if (spec_text && spec_text->isString()) {
            json::Value doc;
            std::string perr;
            if (!json::parse(spec_text->asString(), doc, &perr))
                throw driver::SpecError("spec_text: " + perr);
            spec = driver::ExperimentSpec::fromJson(doc);
        } else if (spec_obj && spec_obj->isObject()) {
            spec = driver::ExperimentSpec::fromJson(*spec_obj);
        } else {
            writeFrame(fd,
                       errorFramePayload(
                           ErrorCode::ProtocolError,
                           "run request carries neither \"spec\" "
                           "nor \"spec_text\""),
                       opts.ioTimeoutMs);
            return;
        }
    } catch (const Error &e) {
        // Containment: a bad spec answers THIS client and changes
        // nothing else — same taxonomy code the CLI would exit with.
        writeFrame(fd, errorFramePayload(e.code(), e.what()),
                   opts.ioTimeoutMs);
        return;
    }

    driver::DriverOptions dopts;
    dopts.resetMetrics = false;
    dopts.suppressSpecSinks = true;
    dopts.maxAttempts = opts.maxAttempts;
    dopts.retryBackoffMs = opts.retryBackoffMs;
    dopts.traceCache = 0; // the daemon's cache is on the runner
    if (self)
        dopts.shutdown = &self->token;
    const json::Value *deadline = req.find("deadline_s");
    if (deadline && deadline->isNumber())
        dopts.jobTimeoutS = deadline->asNumber();
    else if (opts.requestDeadlineS > 0.0)
        dopts.jobTimeoutS = opts.requestDeadlineS;

    {
        std::lock_guard<std::mutex> lock(mu);
        dopts.runner = &residentRunner(
            spec, spec.records); // records: spec value (no CLI
                                 // override path in serve)
    }

    // Capturing sinks: the daemon renders what the spec asked for
    // but ships the bytes back instead of touching the filesystem —
    // the client owns where (and whether) they land.
    std::vector<driver::SinkSpec> sink_specs = spec.sinks;
    if (sink_specs.empty())
        sink_specs.push_back(driver::SinkSpec{});
    std::vector<std::unique_ptr<std::string>> captures;

    driver::ExperimentDriver drv(spec, dopts);
    for (const auto &s : sink_specs) {
        captures.push_back(std::make_unique<std::string>());
        drv.addSink(
            driver::makeCapturingSink(s, captures.back().get()));
    }

    driver::ExperimentReport report;
    try {
        report = drv.run();
    } catch (const Error &e) {
        writeFrame(fd, errorFramePayload(e.code(), e.what()),
                   opts.ioTimeoutMs);
        return;
    } catch (const std::exception &e) {
        writeFrame(fd,
                   errorFramePayload(ErrorCode::Internal, e.what()),
                   opts.ioTimeoutMs);
        return;
    }

    json::Value o = json::Value::makeObject();
    o.set("type", json::Value("result"));
    o.set("exit_code",
          json::Value(driver::exitCodeForReport(
              report, drv.keepGoingEnabled())));
    o.set("failed_jobs",
          json::Value(static_cast<double>(report.failedJobs)));
    o.set("interrupted", json::Value(report.interrupted));
    o.set("wall_seconds", json::Value(report.meta.wallSeconds));
    json::Value sinks = json::Value::makeArray();
    for (std::size_t i = 0; i < sink_specs.size(); ++i) {
        json::Value s = json::Value::makeObject();
        s.set("type", json::Value(sinkTypeName(sink_specs[i].kind)));
        s.set("path", json::Value(sink_specs[i].path));
        s.set("content", json::Value(*captures[i]));
        sinks.push(std::move(s));
    }
    o.set("sinks", std::move(sinks));

    if (self && self->disconnected) {
        // The monitor already saw the peer go; writing would only
        // burn the I/O timeout against a dead socket.
        return;
    }
    writeFrame(fd, json::dump(o), opts.ioTimeoutMs);
}

void
ServeDaemon::handleHealth(int fd)
{
    json::Value o = json::Value::makeObject();
    o.set("type", json::Value("health"));
    o.set("pid",
          json::Value(static_cast<double>(::getpid())));
    const double uptime =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - startTime)
            .count();
    o.set("uptime_s", json::Value(uptime));
    o.set("rss_mb", json::Value(static_cast<double>(currentRssMb())));
    {
        std::lock_guard<std::mutex> lock(mu);
        o.set("active",
              json::Value(static_cast<double>(active.size())));
        o.set("queued",
              json::Value(static_cast<double>(queue.size())));
        json::Value pool = json::Value::makeArray();
        for (const auto &[key, runner] : runners) {
            json::Value r = json::Value::makeObject();
            r.set("config", json::Value(key));
            r.set("trace_bytes",
                  json::Value(static_cast<double>(
                      runner->residentTraceBytes())));
            json::Value traces = json::Value::makeArray();
            for (const auto &t : runner->residentTraces()) {
                json::Value tv = json::Value::makeObject();
                tv.set("workload", json::Value(t.workload));
                tv.set("bytes", json::Value(
                                    static_cast<double>(t.bytes)));
                tv.set("in_use", json::Value(t.inUse));
                traces.push(std::move(tv));
            }
            r.set("traces", std::move(traces));
            pool.push(std::move(r));
        }
        o.set("resident", std::move(pool));
    }
    const metrics::RegistrySnapshot snap =
        metrics::Registry::instance().snapshot();
    json::Value counters = json::Value::makeObject();
    for (const auto &c : snap.counters)
        counters.set(c.name, json::Value(c.value));
    o.set("counters", std::move(counters));
    json::Value gauges = json::Value::makeObject();
    for (const auto &g : snap.gauges)
        gauges.set(g.name,
                   json::Value(static_cast<double>(g.value)));
    o.set("gauges", std::move(gauges));
    json::Value hists = json::Value::makeObject();
    for (const auto &h : snap.histograms) {
        json::Value hv = json::Value::makeObject();
        hv.set("count", json::Value(h.snap.count));
        hv.set("sum", json::Value(h.snap.sum));
        hv.set("min", json::Value(h.snap.min));
        hv.set("max", json::Value(h.snap.max));
        hists.set(h.name, std::move(hv));
    }
    o.set("histograms", std::move(hists));
    writeFrame(fd, json::dump(o), opts.ioTimeoutMs);
}

void
ServeDaemon::monitorLoop()
{
    static metrics::Counter &disconnects =
        metrics::counter("serve.disconnects");
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu);
            if (cv.wait_for(lock, std::chrono::milliseconds(100),
                            [this] { return stopping; }))
                return;
        }
        // Disconnect detection: a client waiting for its result
        // sends nothing, so readable + MSG_PEEK == 0 is exactly
        // "peer closed". The request's token fires and its jobs
        // unwind within a bounded number of records.
        std::vector<std::shared_ptr<ActiveRequest>> snapshot;
        {
            std::lock_guard<std::mutex> lock(mu);
            snapshot = active;
        }
        for (const auto &a : snapshot) {
            if (a->disconnected)
                continue;
            struct pollfd pfd;
            pfd.fd = a->fd;
            pfd.events = POLLIN;
            pfd.revents = 0;
            if (::poll(&pfd, 1, 0) <= 0)
                continue;
            char c;
            const ssize_t n = ::recv(a->fd, &c, 1,
                                     MSG_PEEK | MSG_DONTWAIT);
            if (n == 0
                || (pfd.revents & (POLLERR | POLLHUP)) != 0) {
                a->disconnected = true;
                a->token.cancel();
                disconnects.inc();
                prophet_infof("serve: client gone mid-request; "
                              "cancelling its jobs");
            }
        }
        maybeEvict();
    }
}

void
ServeDaemon::maybeEvict()
{
    if (opts.maxRssMb == 0)
        return;
    static metrics::Counter &evictions =
        metrics::counter("serve.evictions");
    // Eviction and admission share mu: a request cannot enter
    // `active` while traces are being dropped, and evictLruTrace
    // itself skips anything a straggling shared_ptr still pins.
    std::lock_guard<std::mutex> lock(mu);
    if (!active.empty() || !queue.empty())
        return;
    while (currentRssMb() > opts.maxRssMb) {
        std::size_t freed = 0;
        for (auto &[key, runner] : runners) {
            freed = runner->evictLruTrace();
            if (freed > 0)
                break;
        }
        if (freed == 0)
            return; // nothing left to drop; the watermark stands
        evictions.inc();
    }
}

std::size_t
ServeDaemon::activeRequests()
{
    std::lock_guard<std::mutex> lock(mu);
    return active.size();
}

void
ServeDaemon::drainAndStop()
{
    if (!started || stopped)
        return;
    stopped = true;
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    cv.notify_all();
    acceptor.join();
    ::close(listenFd);
    listenFd = -1;

    // Queued-but-unstarted connections are shed honestly: a
    // cancelled frame, not a vanished daemon.
    std::deque<int> orphaned;
    {
        std::lock_guard<std::mutex> lock(mu);
        orphaned.swap(queue);
    }
    for (int fd : orphaned)
        refuseConnection(fd,
                         errorFramePayload(ErrorCode::Cancelled,
                                           "daemon is draining"),
                         opts.maxFrameBytes);

    // Grace window: in-flight requests finish on their own terms;
    // past it their tokens fire and they unwind as interrupted —
    // each still gets its (partial) result frame flushed.
    const auto grace_end = std::chrono::steady_clock::now()
        + std::chrono::duration_cast<
              std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(opts.drainGraceS));
    while (activeRequests() > 0
           && std::chrono::steady_clock::now() < grace_end)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    {
        std::lock_guard<std::mutex> lock(mu);
        for (const auto &a : active)
            a->token.cancel();
    }
    cv.notify_all();
    for (auto &w : workers)
        w.join();
    workers.clear();
    monitor.join();

    ::unlink(opts.socketPath.c_str());
    if (pidfileFd >= 0) {
        ::unlink(pidfilePath.c_str());
        ::close(pidfileFd); // lock released after the name is gone
        pidfileFd = -1;
    }
    prophet_infof("serve: drained and stopped");
}

} // namespace prophet::serve
