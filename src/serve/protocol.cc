#include "serve/protocol.hh"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/fault_injection.hh"

namespace prophet::serve
{

namespace
{

/** Milliseconds left until @p deadline ( -1 = no deadline). */
int
remainingMs(std::chrono::steady_clock::time_point deadline,
            bool has_deadline)
{
    if (!has_deadline)
        return -1;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
    if (left <= 0)
        return 0;
    return static_cast<int>(left);
}

enum class IoStatus { Ok, Eof, Timeout, Error };

/**
 * Read exactly @p len bytes, polling for readability under the
 * deadline. Eof is reported with the bytes-read count so the caller
 * can distinguish a clean close (0 bytes) from a truncated frame.
 */
IoStatus
readFull(int fd, void *buf, std::size_t len, std::size_t &got,
         std::chrono::steady_clock::time_point deadline,
         bool has_deadline)
{
    got = 0;
    char *p = static_cast<char *>(buf);
    while (got < len) {
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int rc =
            ::poll(&pfd, 1, remainingMs(deadline, has_deadline));
        if (rc == 0)
            return IoStatus::Timeout;
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return IoStatus::Error;
        }
        const ssize_t n = ::read(fd, p + got, len - got);
        if (n == 0)
            return IoStatus::Eof;
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN
                || errno == EWOULDBLOCK)
                continue;
            return IoStatus::Error;
        }
        got += static_cast<std::size_t>(n);
    }
    return IoStatus::Ok;
}

} // anonymous namespace

ReadOutcome
readFrame(int fd, std::uint32_t max_bytes, int timeout_ms)
{
    ReadOutcome out;
    const bool has_deadline = timeout_ms >= 0;
    const auto deadline = std::chrono::steady_clock::now()
        + std::chrono::milliseconds(has_deadline ? timeout_ms : 0);

    if (fault::shouldFail("serve.frame_read")) {
        out.kind = ReadOutcome::Kind::IoError;
        out.error = "injected frame-read failure";
        return out;
    }

    unsigned char hdr[8];
    std::size_t got = 0;
    switch (readFull(fd, hdr, sizeof(hdr), got, deadline,
                     has_deadline)) {
      case IoStatus::Ok:
        break;
      case IoStatus::Eof:
        if (got == 0) {
            out.kind = ReadOutcome::Kind::Eof;
            return out;
        }
        out.kind = ReadOutcome::Kind::Malformed;
        out.error = "connection closed mid-header";
        return out;
      case IoStatus::Timeout:
        out.kind = ReadOutcome::Kind::Timeout;
        out.error = "frame header timed out";
        return out;
      case IoStatus::Error:
        out.kind = ReadOutcome::Kind::IoError;
        out.error = std::strerror(errno);
        return out;
    }

    const std::uint32_t magic = static_cast<std::uint32_t>(hdr[0])
        | static_cast<std::uint32_t>(hdr[1]) << 8
        | static_cast<std::uint32_t>(hdr[2]) << 16
        | static_cast<std::uint32_t>(hdr[3]) << 24;
    const std::uint32_t length = static_cast<std::uint32_t>(hdr[4])
        | static_cast<std::uint32_t>(hdr[5]) << 8
        | static_cast<std::uint32_t>(hdr[6]) << 16
        | static_cast<std::uint32_t>(hdr[7]) << 24;
    if (magic != kFrameMagic) {
        out.kind = ReadOutcome::Kind::Malformed;
        out.error = "bad frame magic";
        return out;
    }
    // The cap check precedes the allocation: an advertised length is
    // attacker/corruption-controlled data and must never size a
    // buffer before passing it.
    if (length > max_bytes) {
        out.kind = ReadOutcome::Kind::Malformed;
        out.error = "frame length " + std::to_string(length)
            + " exceeds the " + std::to_string(max_bytes)
            + "-byte cap";
        return out;
    }

    out.payload.resize(length);
    if (length > 0) {
        switch (readFull(fd, &out.payload[0], length, got, deadline,
                         has_deadline)) {
          case IoStatus::Ok:
            break;
          case IoStatus::Eof:
            out.payload.clear();
            out.kind = ReadOutcome::Kind::Malformed;
            out.error = "connection closed mid-payload";
            return out;
          case IoStatus::Timeout:
            out.payload.clear();
            out.kind = ReadOutcome::Kind::Timeout;
            out.error = "frame payload timed out";
            return out;
          case IoStatus::Error:
            out.payload.clear();
            out.kind = ReadOutcome::Kind::IoError;
            out.error = std::strerror(errno);
            return out;
        }
    }
    out.kind = ReadOutcome::Kind::Frame;
    return out;
}

bool
writeFrame(int fd, const std::string &payload, int timeout_ms)
{
    if (payload.size() > ~std::uint32_t{0})
        return false;
    if (fault::shouldFail("serve.frame_write"))
        return false;

    const bool has_deadline = timeout_ms >= 0;
    const auto deadline = std::chrono::steady_clock::now()
        + std::chrono::milliseconds(has_deadline ? timeout_ms : 0);
    const std::uint32_t length =
        static_cast<std::uint32_t>(payload.size());
    unsigned char hdr[8] = {
        static_cast<unsigned char>(kFrameMagic & 0xff),
        static_cast<unsigned char>((kFrameMagic >> 8) & 0xff),
        static_cast<unsigned char>((kFrameMagic >> 16) & 0xff),
        static_cast<unsigned char>((kFrameMagic >> 24) & 0xff),
        static_cast<unsigned char>(length & 0xff),
        static_cast<unsigned char>((length >> 8) & 0xff),
        static_cast<unsigned char>((length >> 16) & 0xff),
        static_cast<unsigned char>((length >> 24) & 0xff),
    };

    // Header and payload as one contiguous buffer: a short send may
    // still split anywhere, so the loop below handles both.
    std::string buf(reinterpret_cast<char *>(hdr), sizeof(hdr));
    buf += payload;

    std::size_t sent = 0;
    while (sent < buf.size()) {
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLOUT;
        pfd.revents = 0;
        const int rc =
            ::poll(&pfd, 1, remainingMs(deadline, has_deadline));
        if (rc == 0)
            return false;
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        const ssize_t n = ::send(fd, buf.data() + sent,
                                 buf.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN
                || errno == EWOULDBLOCK)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace prophet::serve
