#include "serve/client.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.hh"
#include "common/exit_codes.hh"
#include "driver/json.hh"
#include "serve/protocol.hh"

namespace prophet::serve
{

namespace json = driver::json;

namespace
{

/** Connect to a Unix stream socket; -1 with errno on failure. */
int
connectTo(const std::string &path)
{
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        errno = ENAMETOOLONG;
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        return -1;
    }
    return fd;
}

/** The ErrorCode spelled by @p name ("spec-parse", ...). */
ErrorCode
codeFromName(const std::string &name)
{
    for (int i = 0; i <= static_cast<int>(ErrorCode::SocketBusy);
         ++i) {
        const ErrorCode c = static_cast<ErrorCode>(i);
        if (name == errorCodeName(c))
            return c;
    }
    return ErrorCode::Internal;
}

/**
 * Decode a {"type":"error"} frame onto stderr + an exit code;
 * returns -1 when the frame is not an error frame.
 */
int
maybeErrorFrame(const json::Value &resp)
{
    const json::Value *type = resp.find("type");
    if (!type || !type->isString() || type->asString() != "error")
        return -1;
    const json::Value *code = resp.find("code");
    const json::Value *message = resp.find("message");
    const json::Value *retry = resp.find("retry_after_ms");
    const std::string code_name =
        code && code->isString() ? code->asString() : "internal";
    std::fprintf(stderr, "client: server error: %s: %s",
                 code_name.c_str(),
                 message && message->isString()
                     ? message->asString().c_str()
                     : "(no message)");
    if (retry && retry->isNumber())
        std::fprintf(stderr, " (retry after %.0f ms)",
                     retry->asNumber());
    std::fprintf(stderr, "\n");
    // Prefer the server's own exit_code; fall back to mapping the
    // code name so old daemons still produce a sane exit.
    const json::Value *ec = resp.find("exit_code");
    if (ec && ec->isNumber())
        return static_cast<int>(ec->asNumber());
    return static_cast<int>(
        exitCodeForError(codeFromName(code_name)));
}

} // anonymous namespace

bool
clientExchange(const std::string &socket_path,
               const std::string &payload, std::string &response,
               std::string &err, int timeout_ms)
{
    const int fd = connectTo(socket_path);
    if (fd < 0) {
        err = "cannot connect to " + socket_path + ": "
            + std::strerror(errno);
        return false;
    }
    if (!writeFrame(fd, payload, timeout_ms)) {
        err = "request frame write failed";
        ::close(fd);
        return false;
    }
    ReadOutcome out =
        readFrame(fd, kDefaultMaxFrameBytes, timeout_ms);
    ::close(fd);
    if (out.kind != ReadOutcome::Kind::Frame) {
        err = out.error.empty() ? "no response frame" : out.error;
        return false;
    }
    response = std::move(out.payload);
    return true;
}

int
clientSimpleRequest(const std::string &socket_path,
                    const std::string &type, int timeout_ms)
{
    json::Value req = json::Value::makeObject();
    req.set("type", json::Value(type));
    std::string response, err;
    if (!clientExchange(socket_path, json::dump(req), response, err,
                        timeout_ms)) {
        std::fprintf(stderr, "client: %s\n", err.c_str());
        return static_cast<int>(ExitCode::RuntimeFailure);
    }
    json::Value resp;
    std::string perr;
    if (!json::parse(response, resp, &perr)) {
        std::fprintf(stderr, "client: malformed response: %s\n",
                     perr.c_str());
        return static_cast<int>(ExitCode::RuntimeFailure);
    }
    const int err_code = maybeErrorFrame(resp);
    if (err_code >= 0)
        return err_code;
    std::printf("%s\n", json::dump(resp, 2).c_str());
    return static_cast<int>(ExitCode::Success);
}

int
clientRun(const std::string &socket_path,
          const std::string &spec_path, double deadline_s,
          int timeout_ms)
{
    std::ifstream in(spec_path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "client: cannot read spec %s\n",
                     spec_path.c_str());
        return static_cast<int>(ExitCode::SpecInvalid);
    }
    std::ostringstream text;
    text << in.rdbuf();

    json::Value req = json::Value::makeObject();
    req.set("type", json::Value("run"));
    req.set("spec_text", json::Value(text.str()));
    if (deadline_s > 0.0)
        req.set("deadline_s", json::Value(deadline_s));

    std::string response, err;
    if (!clientExchange(socket_path, json::dump(req), response, err,
                        timeout_ms)) {
        std::fprintf(stderr, "client: %s\n", err.c_str());
        return static_cast<int>(ExitCode::RuntimeFailure);
    }
    json::Value resp;
    std::string perr;
    if (!json::parse(response, resp, &perr)) {
        std::fprintf(stderr, "client: malformed response: %s\n",
                     perr.c_str());
        return static_cast<int>(ExitCode::RuntimeFailure);
    }
    const int err_code = maybeErrorFrame(resp);
    if (err_code >= 0)
        return err_code;

    const json::Value *type = resp.find("type");
    if (!type || !type->isString()
        || type->asString() != "result") {
        std::fprintf(stderr, "client: unexpected response type\n");
        return static_cast<int>(ExitCode::RuntimeFailure);
    }

    // Materialise the daemon-rendered sinks exactly where a
    // standalone run would have put them: table bytes to stdout,
    // file sinks to their spec paths (with the CLI's stderr notes),
    // so the two entry points are byte-identical to compare.
    bool sinks_ok = true;
    const json::Value *sinks = resp.find("sinks");
    if (sinks && sinks->isArray()) {
        for (const auto &s : sinks->asArray()) {
            const json::Value *stype = s.find("type");
            const json::Value *spath = s.find("path");
            const json::Value *content = s.find("content");
            if (!stype || !stype->isString() || !content
                || !content->isString())
                continue;
            const std::string &kind = stype->asString();
            const std::string &body = content->asString();
            if (kind == "table") {
                std::fwrite(body.data(), 1, body.size(), stdout);
                continue;
            }
            const std::string path =
                spath && spath->isString() ? spath->asString() : "";
            if (path.empty()) {
                sinks_ok = false;
                continue;
            }
            std::ofstream out(path, std::ios::binary);
            out << body;
            out.flush();
            if (!out) {
                std::fprintf(stderr,
                             "%s sink: write to %s failed\n",
                             kind.c_str(), path.c_str());
                sinks_ok = false;
                continue;
            }
            std::fprintf(stderr, "%s sink: wrote %s\n", kind.c_str(),
                         path.c_str());
        }
    }

    const json::Value *ec = resp.find("exit_code");
    int exit_code = ec && ec->isNumber()
        ? static_cast<int>(ec->asNumber())
        : static_cast<int>(ExitCode::RuntimeFailure);
    if (exit_code == 0 && !sinks_ok)
        exit_code = static_cast<int>(ExitCode::RuntimeFailure);
    return exit_code;
}

} // namespace prophet::serve
