/**
 * @file
 * The resident `prophet serve` daemon: accepts experiment requests
 * over a Unix-domain socket and runs them through the existing
 * ExperimentDriver against resident Runner trace/baseline caches, so
 * a warm repeat of a spec skips every trace load.
 *
 * Robustness envelope (each hard-tested in tests/test_serve_daemon):
 *  - admission control: a bounded queue; overflow is shed explicitly
 *    with a structured server-overloaded error frame carrying a
 *    retry_after_ms hint — never a silent hang;
 *  - fault containment: a malformed frame, oversize payload, unknown
 *    spec field, or mid-run job failure produces a structured error
 *    or partial-result frame for THAT request while the daemon keeps
 *    serving everyone else;
 *  - per-request deadlines ride the driver's JobWatchdog thread-local
 *    tokens, so a deadline cancels one request's jobs on a shared
 *    resident runner without touching its neighbours;
 *  - a client that disconnects mid-run has its request token fired
 *    (the orphaned jobs unwind within a bounded number of records)
 *    and its slot freed;
 *  - an RSS high-watermark evicts idle resident traces (LRU, only
 *    while zero requests are in flight — eviction and admission
 *    share one lock, so a trace can never vanish under a run);
 *  - SIGTERM drain: stop accepting, let in-flight requests finish
 *    within a grace window, cancel the stragglers, flush, exit 6.
 *
 * Protocol: serve/protocol.hh frames; request/response JSON schema
 * documented in README "Serving".
 */

#ifndef PROPHET_SERVE_SERVER_HH
#define PROPHET_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.hh"
#include "driver/json.hh"
#include "driver/spec.hh"
#include "serve/protocol.hh"
#include "sim/runner.hh"
#include "trace/trace_cache.hh"

namespace prophet::serve
{

/** Daemon configuration (CLI flags map 1:1 onto these). */
struct ServeOptions
{
    std::string socketPath;

    /** Concurrent request slots (worker threads). */
    unsigned workers = 2;

    /** Connections waiting beyond the busy workers before the
     *  acceptor sheds with server-overloaded. */
    std::size_t maxQueue = 16;

    /** Per-frame payload cap (checked before allocation). */
    std::uint32_t maxFrameBytes = kDefaultMaxFrameBytes;

    /** Per-frame I/O deadline on the daemon side, ms. */
    int ioTimeoutMs = 10000;

    /**
     * Default per-job deadline (seconds) applied to requests that do
     * not carry their own "deadline_s"; 0 = none.
     */
    double requestDeadlineS = 0.0;

    /**
     * RSS high-watermark in MiB; above it the monitor evicts idle
     * resident traces LRU-first (counted in "serve.evictions").
     * 0 disables the watermark.
     */
    std::size_t maxRssMb = 0;

    /** Grace window for in-flight requests during drain, seconds.
     *  After it, their tokens fire and they unwind as interrupted. */
    double drainGraceS = 5.0;

    /** Driver retry policy forwarded per request. */
    unsigned maxAttempts = 2;
    unsigned retryBackoffMs = 50;

    /** On-disk trace cache: -1 spec value, 0 off, 1 on. */
    int traceCache = -1;
    std::string traceCacheDir; ///< empty = default dir
};

/**
 * The daemon. start() binds (recovering a stale socket, refusing a
 * live one), spawns the acceptor/worker/monitor threads, and
 * returns; drainAndStop() is the graceful shutdown. One instance per
 * process — the metrics it reports live in the process-wide
 * registry.
 */
class ServeDaemon
{
  public:
    explicit ServeDaemon(ServeOptions opts);
    ~ServeDaemon();

    ServeDaemon(const ServeDaemon &) = delete;
    ServeDaemon &operator=(const ServeDaemon &) = delete;

    /**
     * Acquire the pidfile lock, bind the socket, start serving.
     * Throws Error(SocketBusy) when a live daemon owns the path and
     * Error(Internal) on bind/listen failures. A stale socket file
     * (pidfile lock free) is removed and rebound.
     */
    void start();

    /**
     * Graceful drain: stop accepting, shed queued-but-unstarted
     * connections with a cancelled error frame, give in-flight
     * requests drainGraceS to finish, fire their tokens, join every
     * thread, unlink the socket and pidfile. Idempotent.
     */
    void drainAndStop();

    /** Requests currently executing (tests poll this). */
    std::size_t activeRequests();

    const std::string &socketPath() const { return opts.socketPath; }

  private:
    struct ActiveRequest
    {
        int fd = -1;
        CancellationToken token;
        // Written by the monitor thread, read by the worker that
        // owns the request — atomic, not mutex-guarded, because the
        // worker checks it between driver jobs on the hot path.
        std::atomic<bool> disconnected{false};
    };

    void acceptLoop();
    void workerLoop();
    void monitorLoop();
    void handleConnection(int fd);
    void handleRun(int fd, const driver::json::Value &req,
                   std::shared_ptr<ActiveRequest> active);
    void handleHealth(int fd);

    /**
     * The resident Runner for a spec's base configuration: one per
     * distinct (l1, dram_channels, warmup_records, sampling,
     * records) tuple — exactly the fields baseConfig() and the
     * record count derive from, so two specs sharing the tuple share
     * traces and baselines. Created on first use; caller holds mu.
     */
    sim::Runner &residentRunner(const driver::ExperimentSpec &spec,
                                std::size_t records);
    void maybeEvict();

    ServeOptions opts;
    std::string pidfilePath;
    int pidfileFd = -1;
    int listenFd = -1;
    bool started = false;
    bool stopped = false;
    std::chrono::steady_clock::time_point startTime;

    /** Guards queue/active/runners — and is held across eviction, so
     *  admission (which bumps active) excludes it. */
    std::mutex mu;
    std::condition_variable cv;
    bool stopping = false;
    std::deque<int> queue; ///< accepted fds awaiting a worker
    std::vector<std::shared_ptr<ActiveRequest>> active;
    std::map<std::string, std::unique_ptr<sim::Runner>> runners;
    std::shared_ptr<trace::TraceCache> cache; ///< shared by runners

    std::thread acceptor;
    std::vector<std::thread> workers;
    std::thread monitor;
};

/** Resident-set size of this process in MiB (0 when unreadable). */
std::size_t currentRssMb();

} // namespace prophet::serve

#endif // PROPHET_SERVE_SERVER_HH
