/**
 * @file
 * The `prophet client` side of the serve protocol: connect to a
 * daemon's Unix socket, send one request frame, decode the response.
 *
 * `clientRun` is the CLI-equivalent path: it ships a spec file's
 * text to the daemon, then materialises the returned sinks exactly
 * where a standalone `prophet run SPEC` would have put them — table
 * content to stdout, json/csv content to the spec's paths — and
 * returns the same documented exit code, so `prophet client run` is
 * a drop-in swap for `prophet run` against a warm daemon.
 */

#ifndef PROPHET_SERVE_CLIENT_HH
#define PROPHET_SERVE_CLIENT_HH

#include <string>

namespace prophet::serve
{

/**
 * Run a spec file through the daemon at @p socket_path. Writes the
 * returned sinks locally, prints structured errors to stderr, and
 * returns the documented process exit code (the daemon's verdict,
 * or the client-side mapping for connect/protocol failures).
 * @p deadline_s > 0 asks the daemon for a per-job deadline;
 * @p timeout_ms bounds the wait for the response frame (< 0 waits
 * forever — simulations can be slow).
 */
int clientRun(const std::string &socket_path,
              const std::string &spec_path, double deadline_s,
              int timeout_ms);

/**
 * Send a bare {"type": @p type} request ("ping", "health") and
 * print the response payload to stdout. Returns the documented
 * exit code (0 on any well-formed response).
 */
int clientSimpleRequest(const std::string &socket_path,
                        const std::string &type, int timeout_ms);

/**
 * Low-level one-shot exchange for tests: connect, send @p payload
 * as one frame, read one response frame into @p response. Returns
 * false (with @p err set) on connect/frame failures.
 */
bool clientExchange(const std::string &socket_path,
                    const std::string &payload,
                    std::string &response, std::string &err,
                    int timeout_ms);

} // namespace prophet::serve

#endif // PROPHET_SERVE_CLIENT_HH
