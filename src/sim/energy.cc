#include "sim/energy.hh"

namespace prophet::sim
{

EnergyReport
memoryEnergy(const RunStats &stats, const EnergyParams &params)
{
    EnergyReport r;
    r.l1Nj = params.l1AccessNj * static_cast<double>(stats.l1Accesses);
    r.l2Nj = params.l2AccessNj * static_cast<double>(stats.l2Accesses);
    r.llcNj =
        params.llcAccessNj * static_cast<double>(stats.llcAccesses);
    // Metadata-table activity: lookups plus insert/update writes.
    double md_accesses =
        static_cast<double>(stats.markov.lookups)
        + static_cast<double>(stats.markov.inserts)
        + static_cast<double>(stats.markov.updates);
    r.metadataNj = params.metadataAccessNj * md_accesses;
    r.dramNj = params.dramAccessNj
        * static_cast<double>(stats.dramReads + stats.dramWrites);
    return r;
}

} // namespace prophet::sim
