#include "sim/system.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"
#include "common/log.hh"
#include "common/metrics.hh"
#include "prefetch/ipcp.hh"
#include "prefetch/stride.hh"
#include "prefetch/domino.hh"
#include "prefetch/triage.hh"
#include "prefetch/triangel.hh"

namespace prophet::sim
{

namespace
{

std::unique_ptr<pf::L1Prefetcher>
makeL1Pf(L1PfKind kind)
{
    switch (kind) {
      case L1PfKind::None:
        return nullptr;
      case L1PfKind::Stride:
        return std::make_unique<pf::StridePrefetcher>(8);
      case L1PfKind::Ipcp:
        return std::make_unique<pf::IpcpPrefetcher>();
    }
    return nullptr;
}

} // anonymous namespace

SystemConfig
SystemConfig::table1()
{
    SystemConfig cfg;
    // Table 1: 64 KB 4-way L1 (2 cycles, PLRU), 512 KB 8-way L2
    // (9 cycles, PLRU), 2 MB 16-way LLC (20 cycles), LPDDR5-class
    // single-channel DRAM; 5-wide fetch, 288-entry ROB.
    cfg.core = CoreParams{5.0, 288};
    cfg.hier.l1d = {"L1D", 64 * 1024, 4, 2, 16, "plru"};
    cfg.hier.l2 = {"L2", 512 * 1024, 8, 9, 32, "plru"};
    cfg.hier.llc = {"LLC", 2 * 1024 * 1024, 16, 20, 36, "lru"};
    cfg.hier.dram = mem::DramConfig{150, 8, 1};
    cfg.l1Pf = L1PfKind::Stride;
    cfg.l2Pf = L2PfKind::None;
    return cfg;
}

System::System(const SystemConfig &config,
               const trace::IndirectResolver *resolver)
    : cfg(config), resolver(resolver), coreModel(config.core),
      hier(config.hier), l1Pf(makeL1Pf(config.l1Pf))
{
    // The sync check is a mask test, which silently misfires on a
    // non-power-of-two interval; round up front instead.
    cfg.partitionSyncInterval =
        normalizePartitionSyncInterval(cfg.partitionSyncInterval);
    syncMask = cfg.partitionSyncInterval - 1;

    switch (cfg.l2Pf) {
      case L2PfKind::None:
        break;
      case L2PfKind::Triage: {
        pf::TriageConfig tc = cfg.triage;
        tc.degree = 1;
        l2Pf = std::make_unique<pf::TriagePrefetcher>(tc);
        break;
      }
      case L2PfKind::Triage4: {
        pf::TriageConfig tc = cfg.triage;
        tc.degree = 4;
        l2Pf = std::make_unique<pf::TriagePrefetcher>(tc);
        break;
      }
      case L2PfKind::Triangel:
        l2Pf = std::make_unique<pf::TriangelPrefetcher>(cfg.triangel);
        break;
      case L2PfKind::Prophet: {
        auto p = std::make_unique<core::ProphetPrefetcher>(
            cfg.prophet, cfg.binary);
        prophetPf = p.get();
        l2Pf = std::move(p);
        break;
      }
      case L2PfKind::Simplified: {
        core::ProphetConfig pc = cfg.prophet;
        pc.profilingMode = true;
        auto p = std::make_unique<core::ProphetPrefetcher>(pc);
        prophetPf = p.get();
        l2Pf = std::move(p);
        break;
      }
      case L2PfKind::Stms:
        l2Pf = std::make_unique<pf::StmsPrefetcher>(cfg.stms);
        break;
      case L2PfKind::Domino:
        l2Pf = std::make_unique<pf::DominoPrefetcher>(cfg.domino);
        break;
    }
    syncPartition();
}

System::~System() = default;

void
System::setCancellation(const CancellationToken *token,
                        std::size_t interval)
{
    cancelToken = token;
    // Same mask-test idiom as the partition sync: round the interval
    // to a power of two so the hot-path check stays one AND.
    cancelMask = normalizePartitionSyncInterval(interval) - 1;
}

void
System::syncPartition()
{
    unsigned ways = l2Pf ? l2Pf->metadataWays() : 0;
    // The metadata table never takes the whole LLC.
    prophet_assert(ways < hier.llc().assoc());
    if (ways != hier.llc().reservedWays())
        hier.llc().setReservedWays(ways);
}

void
System::beginRun(std::size_t expected_records)
{
    warmBoundary = std::min<std::size_t>(cfg.warmupRecords,
                                         expected_records / 2);
    warmed = false;
    runStartTime = std::chrono::steady_clock::now();
    warmupEndTime = runStartTime;
    recordIndex = 0;
    usefulCount = 0;
    lateCount = 0;
    issuedBeforeMark = 0;
    // Skip the re-reserve when the map still has its capacity from a
    // previous beginRun (only a finish() hands the storage away).
    if (pcMissCounts.capacity() < 1024)
        pcMissCounts.reserve(1024);

    // Hoist the loop-invariant indirections once per run.
    l1Raw = l1Pf.get();
    l2Raw = l2Pf.get();
    rpg2Active = !cfg.rpg2Plan.empty();
    // Without an L2 prefetcher metadataWays() is pinned at zero and
    // the constructor's syncPartition() already applied it, so the
    // per-record interval check is dead — hoist it out of the loop.
    syncActive = l2Raw != nullptr;
}

void
System::step(const trace::TraceRecord &rec)
{
    stepRecord(rec.pc, rec.addr, rec.instGap, rec.dependsOnPrev,
               rec.isWrite);
}

void
System::stepRecord(PC pc, Addr addr, std::uint16_t inst_gap,
                   bool depends_on_prev, bool is_write)
{
    stepRecordImpl<true>(pc, addr, inst_gap, depends_on_prev,
                         is_write);
}

template <bool Detailed>
void
System::stepRecordImpl(PC pc, Addr addr, std::uint16_t inst_gap,
                       bool depends_on_prev, bool is_write)
{
    // Cooperative cancellation: a pure read at coarse intervals, so
    // a token that never fires leaves the run bit-identical — and a
    // detached token (the common case) costs one predictable branch.
    if (cancelToken && (recordIndex & cancelMask) == 0
        && cancelToken->cancelled()) {
        ErrorContext ctx;
        ctx.offset = recordIndex;
        throw Error(ErrorCode::Cancelled,
                    "simulation cancelled mid-run", std::move(ctx));
    }

    if (Detailed && !warmed && recordIndex >= warmBoundary) {
        // Warmup boundary: reset the statistics windows. (The body
        // runs once per run, so the clock read is off the per-record
        // cost; the condition itself is unchanged. Sampled runs set
        // warmed up front and manage their windows explicitly.)
        warmupEndTime = std::chrono::steady_clock::now();
        hier.resetStats();
        coreModel.mark();
        usefulCount = 0;
        lateCount = 0;
        pcMissCounts.clear();
        issuedBeforeMark = hier.l2PrefetchesIssued();
        warmed = true;
    }

    Cycle cycle = coreModel.beginAccess(inst_gap, depends_on_prev);
    mem::AccessOutcome out = hier.access(pc, addr, is_write, cycle);
    coreModel.completeAccess(out.readyAt);

    if (out.prefetchUseful
        && out.prefetchClass == mem::PfClass::L2) {
        // Usefulness feedback trains the prefetcher on both paths;
        // only the *attribution* (the reported counters) is
        // detailed-window work.
        if (Detailed) {
            ++usefulCount;
            if (out.prefetchLate)
                ++lateCount;
        }
        if (l2Raw)
            l2Raw->notifyUseful(out.prefetchPc);
    }

    if (Detailed && out.l2Accessed && !out.l2Hit)
        ++pcMissCounts[pc];

    // Temporal prefetcher observes the demand L2 access stream.
    if (out.l2Accessed && l2Raw) {
        l2Requests.clear();
        l2Raw->observe(pc, out.lineAddr, out.l2Hit, cycle,
                       l2Requests);
        for (const auto &req : l2Requests)
            if (hier.prefetchL2(req.creditPc, req.lineAddr, cycle))
                l2Raw->notifyIssued(req.creditPc);
    }

    // RPG2 software prefetch: armed kernel PCs issue the
    // addresses the inserted code would compute.
    if (rpg2Active) {
        cfg.rpg2Plan.prefetchAddrs(pc, addr, resolver, rpg2Addrs);
        for (Addr a : rpg2Addrs)
            hier.prefetchL2(pc, lineAddr(a), cycle);
    }

    // L1 prefetcher observes every demand L1 access; its
    // requests that reach the L2 also train the temporal
    // prefetcher (Section 5.1).
    if (l1Raw) {
        l1Candidates.clear();
        l1Raw->observe(pc, out.lineAddr,
                       out.level == mem::HitLevel::L1,
                       l1Candidates);
        for (Addr cand : l1Candidates) {
            auto pf_out = hier.prefetchL1(pc, cand, cycle);
            if (pf_out.l2Accessed && l2Raw) {
                l2Requests.clear();
                l2Raw->observe(pc, cand, pf_out.l2Hit, cycle,
                               l2Requests);
                for (const auto &req : l2Requests)
                    if (hier.prefetchL2(req.creditPc,
                                        req.lineAddr, cycle))
                        l2Raw->notifyIssued(req.creditPc);
            }
        }
    }

    if (syncActive && (recordIndex & syncMask) == 0)
        syncPartition();
    ++recordIndex;
}

RunStats
System::finish()
{
    std::uint64_t issued_after_warmup =
        hier.l2PrefetchesIssued() - issuedBeforeMark;

    RunStats s;
    s.ipc = coreModel.ipcSinceMark();
    s.cycles = coreModel.finalCycles();
    s.instructions = coreModel.retiredInstructions();
    s.records = recordIndex;

    const auto &l1s = hier.l1().stats();
    const auto &l2s = hier.l2().stats();
    const auto &llcs = hier.llc().stats();
    s.l1Misses = l1s.demandMisses;
    s.l2DemandAccesses = l2s.demandHits + l2s.demandMisses;
    s.l2DemandMisses = l2s.demandMisses;
    s.llcMisses = llcs.demandMisses;
    s.l1Accesses = l1s.demandHits + l1s.demandMisses;
    s.l2Accesses = s.l2DemandAccesses;
    s.llcAccesses = llcs.demandHits + llcs.demandMisses;

    s.l2PrefetchesIssued = issued_after_warmup;
    s.l2PrefetchesUseful = usefulCount;
    s.latePrefetches = lateCount;

    const auto &ds = hier.dram().stats();
    s.dramReads = ds.reads;
    s.dramWrites = ds.writes;
    s.dramPrefetchReads = ds.prefetchReads;

    if (l2Pf)
        l2Pf->collectStats(s.markov, s.offchipMeta);
    s.finalMetadataWays = l2Pf ? l2Pf->metadataWays() : 0;

    s.pcMisses = std::move(pcMissCounts);

    // Publish the warmup/simulate wall split and the record count.
    // Registry lookups resolve once per process; the references stay
    // valid across driver-run resets.
    static metrics::Histogram &warmup_ns =
        metrics::histogram("phase.warmup_ns");
    static metrics::Histogram &simulate_ns =
        metrics::histogram("phase.simulate_ns");
    static metrics::Histogram &profile_ns =
        metrics::histogram("phase.profile_ns");
    static metrics::Counter &records_counter =
        metrics::counter("sim.records");
    static metrics::Counter &runs_counter = metrics::counter("sim.runs");
    auto end = std::chrono::steady_clock::now();
    if (cfg.profilingRun) {
        // The offline profiling pass: one bucket for the whole run,
        // keeping the warmup/simulate split a pure timing-simulation
        // measure (sampled-vs-full speedups stay comparable even
        // though profiling itself is never sampled).
        profile_ns.recordDuration(end - runStartTime);
    } else if (warmed) {
        warmup_ns.recordDuration(warmupEndTime - runStartTime);
        simulate_ns.recordDuration(end - warmupEndTime);
    } else {
        // The run never crossed the warm boundary (cancelled early,
        // or a zero-length trace): it was all warmup.
        warmup_ns.recordDuration(end - runStartTime);
    }
    records_counter.inc(recordIndex);
    runs_counter.inc();
    return s;
}

void
System::windowBegin()
{
    // Exactly the warmup-boundary resets of the full run, applied at
    // each measurement-window start. usefulCount/lateCount and the
    // per-PC miss map accumulate *across* windows — the warm path
    // never touches them, so no reset is needed after beginRun().
    hier.resetStats();
    coreModel.mark();
    issuedBeforeMark = hier.l2PrefetchesIssued();
}

void
System::windowEnd()
{
    windowAccum.cycles += coreModel.cyclesSinceMark();
    windowAccum.instructions += coreModel.instructionsSinceMark();

    const auto &l1s = hier.l1().stats();
    const auto &l2s = hier.l2().stats();
    const auto &llcs = hier.llc().stats();
    windowAccum.l1DemandHits += l1s.demandHits;
    windowAccum.l1DemandMisses += l1s.demandMisses;
    windowAccum.l2DemandHits += l2s.demandHits;
    windowAccum.l2DemandMisses += l2s.demandMisses;
    windowAccum.llcDemandHits += llcs.demandHits;
    windowAccum.llcDemandMisses += llcs.demandMisses;

    const auto &ds = hier.dram().stats();
    windowAccum.dramReads += ds.reads;
    windowAccum.dramWrites += ds.writes;
    windowAccum.dramPrefetchReads += ds.prefetchReads;

    windowAccum.l2PrefetchesIssued +=
        hier.l2PrefetchesIssued() - issuedBeforeMark;
}

RunStats
System::runSampled(const trace::Trace &t)
{
    const std::size_t n = t.size();
    beginRun(n);
    traceRecords = n;
    detailedTotal = 0;
    warmWallNs = 0;
    windowWallNs = 0;
    windowAccum = WindowAccum{};
    // Neutralize the full-run warmup boundary: sampled runs reset
    // their statistics windows explicitly in windowBegin().
    warmed = true;

    // Normalized schedule: a window never exceeds its interval, and
    // a zero interval degenerates to back-to-back windows (the spec
    // parser rejects both up front; direct System users get the
    // defensive clamp).
    const std::size_t window =
        std::max<std::size_t>(cfg.sampling.windowRecords, 1);
    const std::size_t interval =
        std::max(cfg.sampling.intervalRecords, window);
    const std::size_t warm = cfg.sampling.warmupRecords;
    const std::size_t offset = cfg.sampling.offset;

    const PC *pcs = t.pcData();
    const Addr *addrs = t.addrData();
    const std::uint32_t *metas = t.metaData();

    using clock = std::chrono::steady_clock;
    auto deltaNs = [](clock::time_point a, clock::time_point b) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(b
                                                                 - a)
                .count());
    };

    // Window k occupies the last `window` records of interval k:
    // [offset + (k+1)*interval - window, offset + (k+1)*interval).
    // Before it, up to `warm` records are functionally warmed;
    // everything earlier (back to the previous window's end) is
    // fast-forwarded without any state change — that skipped region
    // is where the throughput comes from.
    std::size_t pos = 0;
    for (std::size_t k = 0;; ++k) {
        const std::size_t sched_end = offset + (k + 1) * interval;
        const std::size_t win_start = sched_end - window;
        if (win_start >= n)
            break;
        const std::size_t win_end = std::min(sched_end, n);
        std::size_t warm_start =
            win_start > warm ? win_start - warm : 0;
        warm_start = std::max(warm_start, pos);

        if (warm_start < win_start) {
            auto t0 = clock::now();
            for (std::size_t i = warm_start; i < win_start; ++i) {
                const std::uint32_t m = metas[i];
                stepRecordImpl<false>(pcs[i], addrs[i],
                                      trace::Trace::gapOf(m),
                                      trace::Trace::dependsOf(m),
                                      trace::Trace::writeOf(m));
            }
            warmWallNs += deltaNs(t0, clock::now());
        }

        auto t0 = clock::now();
        windowBegin();
        for (std::size_t i = win_start; i < win_end; ++i) {
            const std::uint32_t m = metas[i];
            stepRecordImpl<true>(pcs[i], addrs[i],
                                 trace::Trace::gapOf(m),
                                 trace::Trace::dependsOf(m),
                                 trace::Trace::writeOf(m));
        }
        windowEnd();
        windowWallNs += deltaNs(t0, clock::now());
        detailedTotal += win_end - win_start;
        pos = win_end;
    }

    if (detailedTotal == 0 && n > 0) {
        // The schedule never reached the trace (offset or interval
        // beyond its length): nothing was simulated, so estimates
        // would be meaningless. Fall back to an exact full run —
        // slower, never wrong.
        prophet_warnf("sampling: no measurement window fits %zu "
                      "records (interval=%zu window=%zu offset=%zu); "
                      "falling back to a full detailed run",
                      n, interval, window, offset);
        warmed = false;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t m = metas[i];
            stepRecordImpl<true>(pcs[i], addrs[i],
                                 trace::Trace::gapOf(m),
                                 trace::Trace::dependsOf(m),
                                 trace::Trace::writeOf(m));
        }
        return finish();
    }
    return finishSampled();
}

RunStats
System::finishSampled()
{
    const auto n = static_cast<std::uint64_t>(traceRecords);

    // Scale window measurements to estimate the full run's measured
    // region — everything past the statistics-warmup boundary the
    // same configuration would place. A schedule whose windows cover
    // exactly that region gets scale 1 (and, with full-trace
    // warming, reproduces the full run bit for bit).
    const std::size_t full_boundary =
        std::min<std::size_t>(cfg.warmupRecords, traceRecords / 2);
    const auto target =
        static_cast<std::uint64_t>(traceRecords - full_boundary);
    const double scale = detailedTotal > 0
        ? static_cast<double>(target)
            / static_cast<double>(detailedTotal)
        : 1.0;

    // Prefetcher-lifetime counters (Markov events, off-chip metadata
    // traffic) accumulate over every warm + detailed record
    // (recordIndex); scale those by the observed fraction instead.
    const double meta_scale = recordIndex > 0
        ? static_cast<double>(n) / static_cast<double>(recordIndex)
        : 1.0;

    auto sc = [](std::uint64_t v, double s) {
        return static_cast<std::uint64_t>(
            std::llround(static_cast<double>(v) * s));
    };

    RunStats s;
    s.sampled = true;
    s.sampledRecords = detailedTotal;
    s.sampleScale = scale;
    s.records = n;

    // IPC is a ratio of window-local quantities: no scaling.
    s.ipc = windowAccum.cycles > 0.0
        ? static_cast<double>(windowAccum.instructions)
            / windowAccum.cycles
        : 0.0;

    // Cycles: actual warm+window cycles plus the extrapolated cycles
    // of the fast-forwarded records. Written as exact + c*(scale-1)
    // so scale == 1 reproduces finalCycles() bit for bit.
    s.cycles = static_cast<Cycle>(std::llround(std::ceil(
        coreModel.exactCycles()
        + windowAccum.cycles * (scale - 1.0))));
    s.instructions = coreModel.retiredInstructions()
        - windowAccum.instructions
        + sc(windowAccum.instructions, scale);

    s.l1Misses = sc(windowAccum.l1DemandMisses, scale);
    s.l2DemandAccesses = sc(
        windowAccum.l2DemandHits + windowAccum.l2DemandMisses, scale);
    s.l2DemandMisses = sc(windowAccum.l2DemandMisses, scale);
    s.llcMisses = sc(windowAccum.llcDemandMisses, scale);
    s.l1Accesses = sc(
        windowAccum.l1DemandHits + windowAccum.l1DemandMisses, scale);
    s.l2Accesses = s.l2DemandAccesses;
    s.llcAccesses = sc(
        windowAccum.llcDemandHits + windowAccum.llcDemandMisses,
        scale);

    s.l2PrefetchesIssued = sc(windowAccum.l2PrefetchesIssued, scale);
    s.l2PrefetchesUseful = sc(usefulCount, scale);
    s.latePrefetches = sc(lateCount, scale);

    s.dramReads = sc(windowAccum.dramReads, scale);
    s.dramWrites = sc(windowAccum.dramWrites, scale);
    s.dramPrefetchReads = sc(windowAccum.dramPrefetchReads, scale);

    if (l2Pf)
        l2Pf->collectStats(s.markov, s.offchipMeta);
    s.markov.lookups = sc(s.markov.lookups, meta_scale);
    s.markov.hits = sc(s.markov.hits, meta_scale);
    s.markov.inserts = sc(s.markov.inserts, meta_scale);
    s.markov.updates = sc(s.markov.updates, meta_scale);
    s.markov.replacements = sc(s.markov.replacements, meta_scale);
    s.markov.resizeDrops = sc(s.markov.resizeDrops, meta_scale);
    s.offchipMeta.metadataReads =
        sc(s.offchipMeta.metadataReads, meta_scale);
    s.offchipMeta.metadataWrites =
        sc(s.offchipMeta.metadataWrites, meta_scale);
    s.finalMetadataWays = l2Pf ? l2Pf->metadataWays() : 0;

    for (auto &entry : pcMissCounts)
        entry.second = sc(entry.second, scale);
    s.pcMisses = std::move(pcMissCounts);

    // Observability: effective (trace) records, so sweep throughput
    // and --progress report coverage rather than simulated-record
    // counts; the detailed fraction goes to its own counter.
    static metrics::Histogram &warm_ns =
        metrics::histogram("phase.warm_ns");
    static metrics::Histogram &simulate_ns =
        metrics::histogram("phase.simulate_ns");
    static metrics::Counter &records_counter =
        metrics::counter("sim.records");
    static metrics::Counter &sampled_counter =
        metrics::counter("sim.sampled_records");
    static metrics::Counter &runs_counter =
        metrics::counter("sim.runs");
    warm_ns.record(warmWallNs);
    simulate_ns.record(windowWallNs);
    records_counter.inc(n);
    sampled_counter.inc(detailedTotal);
    runs_counter.inc();
    return s;
}

RunStats
System::run(const trace::Trace &t)
{
    if (cfg.sampling.enabled)
        return runSampled(t);

    beginRun(t.size());

    // The whole-trace loop reads the trace's SoA arrays directly —
    // no TraceRecord is materialized — and runs in two blocks
    // separated by the point where the lookahead runs out. Block 1:
    // while record i is simulated, the set-scan arrays record i+K
    // will probe (all cache levels plus the temporal prefetcher's
    // Markov table) are software-prefetched, hiding the dependent
    // tag/key probe latency that dominates the warmed per-record
    // cost. Block 2 (the last K records) steps without lookahead, so
    // the hot loop needs no bounds check on i+K. Prefetches have no
    // architectural effect: results are bit-identical to scalar
    // step() calls (pinned by tests/test_pipelines.cc).
    const std::size_t n = t.size();
    const PC *pcs = t.pcData();
    const Addr *addrs = t.addrData();
    const Addr *lines = t.lineAddrData();
    const std::uint32_t *metas = t.metaData();

    constexpr std::size_t K = kPrefetchLookahead;
    const std::size_t lookahead_end = n > K ? n - K : 0;
    std::size_t i = 0;
    for (; i < lookahead_end; ++i) {
        const Addr ahead = lines[i + K];
        hier.prefetchSets(ahead);
        if (l2Raw)
            l2Raw->prefetchSets(ahead);
        const std::uint32_t m = metas[i];
        stepRecord(pcs[i], addrs[i], trace::Trace::gapOf(m),
                   trace::Trace::dependsOf(m),
                   trace::Trace::writeOf(m));
    }
    for (; i < n; ++i) {
        const std::uint32_t m = metas[i];
        stepRecord(pcs[i], addrs[i], trace::Trace::gapOf(m),
                   trace::Trace::dependsOf(m),
                   trace::Trace::writeOf(m));
    }
    return finish();
}

} // namespace prophet::sim
