#include "sim/system.hh"

#include "common/error.hh"
#include "common/log.hh"
#include "common/metrics.hh"
#include "prefetch/ipcp.hh"
#include "prefetch/stride.hh"
#include "prefetch/domino.hh"
#include "prefetch/triage.hh"
#include "prefetch/triangel.hh"

namespace prophet::sim
{

namespace
{

std::unique_ptr<pf::L1Prefetcher>
makeL1Pf(L1PfKind kind)
{
    switch (kind) {
      case L1PfKind::None:
        return nullptr;
      case L1PfKind::Stride:
        return std::make_unique<pf::StridePrefetcher>(8);
      case L1PfKind::Ipcp:
        return std::make_unique<pf::IpcpPrefetcher>();
    }
    return nullptr;
}

} // anonymous namespace

SystemConfig
SystemConfig::table1()
{
    SystemConfig cfg;
    // Table 1: 64 KB 4-way L1 (2 cycles, PLRU), 512 KB 8-way L2
    // (9 cycles, PLRU), 2 MB 16-way LLC (20 cycles), LPDDR5-class
    // single-channel DRAM; 5-wide fetch, 288-entry ROB.
    cfg.core = CoreParams{5.0, 288};
    cfg.hier.l1d = {"L1D", 64 * 1024, 4, 2, 16, "plru"};
    cfg.hier.l2 = {"L2", 512 * 1024, 8, 9, 32, "plru"};
    cfg.hier.llc = {"LLC", 2 * 1024 * 1024, 16, 20, 36, "lru"};
    cfg.hier.dram = mem::DramConfig{150, 8, 1};
    cfg.l1Pf = L1PfKind::Stride;
    cfg.l2Pf = L2PfKind::None;
    return cfg;
}

System::System(const SystemConfig &config,
               const trace::IndirectResolver *resolver)
    : cfg(config), resolver(resolver), coreModel(config.core),
      hier(config.hier), l1Pf(makeL1Pf(config.l1Pf))
{
    // The sync check is a mask test, which silently misfires on a
    // non-power-of-two interval; round up front instead.
    cfg.partitionSyncInterval =
        normalizePartitionSyncInterval(cfg.partitionSyncInterval);
    syncMask = cfg.partitionSyncInterval - 1;

    switch (cfg.l2Pf) {
      case L2PfKind::None:
        break;
      case L2PfKind::Triage: {
        pf::TriageConfig tc = cfg.triage;
        tc.degree = 1;
        l2Pf = std::make_unique<pf::TriagePrefetcher>(tc);
        break;
      }
      case L2PfKind::Triage4: {
        pf::TriageConfig tc = cfg.triage;
        tc.degree = 4;
        l2Pf = std::make_unique<pf::TriagePrefetcher>(tc);
        break;
      }
      case L2PfKind::Triangel:
        l2Pf = std::make_unique<pf::TriangelPrefetcher>(cfg.triangel);
        break;
      case L2PfKind::Prophet: {
        auto p = std::make_unique<core::ProphetPrefetcher>(
            cfg.prophet, cfg.binary);
        prophetPf = p.get();
        l2Pf = std::move(p);
        break;
      }
      case L2PfKind::Simplified: {
        core::ProphetConfig pc = cfg.prophet;
        pc.profilingMode = true;
        auto p = std::make_unique<core::ProphetPrefetcher>(pc);
        prophetPf = p.get();
        l2Pf = std::move(p);
        break;
      }
      case L2PfKind::Stms:
        l2Pf = std::make_unique<pf::StmsPrefetcher>(cfg.stms);
        break;
      case L2PfKind::Domino:
        l2Pf = std::make_unique<pf::DominoPrefetcher>(cfg.domino);
        break;
    }
    syncPartition();
}

System::~System() = default;

void
System::setCancellation(const CancellationToken *token,
                        std::size_t interval)
{
    cancelToken = token;
    // Same mask-test idiom as the partition sync: round the interval
    // to a power of two so the hot-path check stays one AND.
    cancelMask = normalizePartitionSyncInterval(interval) - 1;
}

void
System::syncPartition()
{
    unsigned ways = l2Pf ? l2Pf->metadataWays() : 0;
    // The metadata table never takes the whole LLC.
    prophet_assert(ways < hier.llc().assoc());
    if (ways != hier.llc().reservedWays())
        hier.llc().setReservedWays(ways);
}

void
System::beginRun(std::size_t expected_records)
{
    warmBoundary = std::min<std::size_t>(cfg.warmupRecords,
                                         expected_records / 2);
    warmed = false;
    runStartTime = std::chrono::steady_clock::now();
    warmupEndTime = runStartTime;
    recordIndex = 0;
    usefulCount = 0;
    lateCount = 0;
    issuedBeforeMark = 0;
    // Skip the re-reserve when the map still has its capacity from a
    // previous beginRun (only a finish() hands the storage away).
    if (pcMissCounts.capacity() < 1024)
        pcMissCounts.reserve(1024);

    // Hoist the loop-invariant indirections once per run.
    l1Raw = l1Pf.get();
    l2Raw = l2Pf.get();
    rpg2Active = !cfg.rpg2Plan.empty();
    // Without an L2 prefetcher metadataWays() is pinned at zero and
    // the constructor's syncPartition() already applied it, so the
    // per-record interval check is dead — hoist it out of the loop.
    syncActive = l2Raw != nullptr;
}

void
System::step(const trace::TraceRecord &rec)
{
    stepRecord(rec.pc, rec.addr, rec.instGap, rec.dependsOnPrev,
               rec.isWrite);
}

void
System::stepRecord(PC pc, Addr addr, std::uint16_t inst_gap,
                   bool depends_on_prev, bool is_write)
{
    // Cooperative cancellation: a pure read at coarse intervals, so
    // a token that never fires leaves the run bit-identical — and a
    // detached token (the common case) costs one predictable branch.
    if (cancelToken && (recordIndex & cancelMask) == 0
        && cancelToken->cancelled()) {
        ErrorContext ctx;
        ctx.offset = recordIndex;
        throw Error(ErrorCode::Cancelled,
                    "simulation cancelled mid-run", std::move(ctx));
    }

    if (!warmed && recordIndex >= warmBoundary) {
        // Warmup boundary: reset the statistics windows. (The body
        // runs once per run, so the clock read is off the per-record
        // cost; the condition itself is unchanged.)
        warmupEndTime = std::chrono::steady_clock::now();
        hier.resetStats();
        coreModel.mark();
        usefulCount = 0;
        lateCount = 0;
        pcMissCounts.clear();
        issuedBeforeMark = hier.l2PrefetchesIssued();
        warmed = true;
    }

    Cycle cycle = coreModel.beginAccess(inst_gap, depends_on_prev);
    mem::AccessOutcome out = hier.access(pc, addr, is_write, cycle);
    coreModel.completeAccess(out.readyAt);

    if (out.prefetchUseful
        && out.prefetchClass == mem::PfClass::L2) {
        ++usefulCount;
        if (out.prefetchLate)
            ++lateCount;
        if (l2Raw)
            l2Raw->notifyUseful(out.prefetchPc);
    }

    if (out.l2Accessed && !out.l2Hit)
        ++pcMissCounts[pc];

    // Temporal prefetcher observes the demand L2 access stream.
    if (out.l2Accessed && l2Raw) {
        l2Requests.clear();
        l2Raw->observe(pc, out.lineAddr, out.l2Hit, cycle,
                       l2Requests);
        for (const auto &req : l2Requests)
            if (hier.prefetchL2(req.creditPc, req.lineAddr, cycle))
                l2Raw->notifyIssued(req.creditPc);
    }

    // RPG2 software prefetch: armed kernel PCs issue the
    // addresses the inserted code would compute.
    if (rpg2Active) {
        cfg.rpg2Plan.prefetchAddrs(pc, addr, resolver, rpg2Addrs);
        for (Addr a : rpg2Addrs)
            hier.prefetchL2(pc, lineAddr(a), cycle);
    }

    // L1 prefetcher observes every demand L1 access; its
    // requests that reach the L2 also train the temporal
    // prefetcher (Section 5.1).
    if (l1Raw) {
        l1Candidates.clear();
        l1Raw->observe(pc, out.lineAddr,
                       out.level == mem::HitLevel::L1,
                       l1Candidates);
        for (Addr cand : l1Candidates) {
            auto pf_out = hier.prefetchL1(pc, cand, cycle);
            if (pf_out.l2Accessed && l2Raw) {
                l2Requests.clear();
                l2Raw->observe(pc, cand, pf_out.l2Hit, cycle,
                               l2Requests);
                for (const auto &req : l2Requests)
                    if (hier.prefetchL2(req.creditPc,
                                        req.lineAddr, cycle))
                        l2Raw->notifyIssued(req.creditPc);
            }
        }
    }

    if (syncActive && (recordIndex & syncMask) == 0)
        syncPartition();
    ++recordIndex;
}

RunStats
System::finish()
{
    std::uint64_t issued_after_warmup =
        hier.l2PrefetchesIssued() - issuedBeforeMark;

    RunStats s;
    s.ipc = coreModel.ipcSinceMark();
    s.cycles = coreModel.finalCycles();
    s.instructions = coreModel.retiredInstructions();
    s.records = recordIndex;

    const auto &l1s = hier.l1().stats();
    const auto &l2s = hier.l2().stats();
    const auto &llcs = hier.llc().stats();
    s.l1Misses = l1s.demandMisses;
    s.l2DemandAccesses = l2s.demandHits + l2s.demandMisses;
    s.l2DemandMisses = l2s.demandMisses;
    s.llcMisses = llcs.demandMisses;
    s.l1Accesses = l1s.demandHits + l1s.demandMisses;
    s.l2Accesses = s.l2DemandAccesses;
    s.llcAccesses = llcs.demandHits + llcs.demandMisses;

    s.l2PrefetchesIssued = issued_after_warmup;
    s.l2PrefetchesUseful = usefulCount;
    s.latePrefetches = lateCount;

    const auto &ds = hier.dram().stats();
    s.dramReads = ds.reads;
    s.dramWrites = ds.writes;
    s.dramPrefetchReads = ds.prefetchReads;

    if (l2Pf)
        l2Pf->collectStats(s.markov, s.offchipMeta);
    s.finalMetadataWays = l2Pf ? l2Pf->metadataWays() : 0;

    s.pcMisses = std::move(pcMissCounts);

    // Publish the warmup/simulate wall split and the record count.
    // Registry lookups resolve once per process; the references stay
    // valid across driver-run resets.
    static metrics::Histogram &warmup_ns =
        metrics::histogram("phase.warmup_ns");
    static metrics::Histogram &simulate_ns =
        metrics::histogram("phase.simulate_ns");
    static metrics::Counter &records_counter =
        metrics::counter("sim.records");
    static metrics::Counter &runs_counter = metrics::counter("sim.runs");
    auto end = std::chrono::steady_clock::now();
    if (warmed) {
        warmup_ns.recordDuration(warmupEndTime - runStartTime);
        simulate_ns.recordDuration(end - warmupEndTime);
    } else {
        // The run never crossed the warm boundary (cancelled early,
        // or a zero-length trace): it was all warmup.
        warmup_ns.recordDuration(end - runStartTime);
    }
    records_counter.inc(recordIndex);
    runs_counter.inc();
    return s;
}

RunStats
System::run(const trace::Trace &t)
{
    beginRun(t.size());

    // The whole-trace loop reads the trace's SoA arrays directly —
    // no TraceRecord is materialized — and runs in two blocks
    // separated by the point where the lookahead runs out. Block 1:
    // while record i is simulated, the set-scan arrays record i+K
    // will probe (all cache levels plus the temporal prefetcher's
    // Markov table) are software-prefetched, hiding the dependent
    // tag/key probe latency that dominates the warmed per-record
    // cost. Block 2 (the last K records) steps without lookahead, so
    // the hot loop needs no bounds check on i+K. Prefetches have no
    // architectural effect: results are bit-identical to scalar
    // step() calls (pinned by tests/test_pipelines.cc).
    const std::size_t n = t.size();
    const PC *pcs = t.pcData();
    const Addr *addrs = t.addrData();
    const Addr *lines = t.lineAddrData();
    const std::uint32_t *metas = t.metaData();

    constexpr std::size_t K = kPrefetchLookahead;
    const std::size_t lookahead_end = n > K ? n - K : 0;
    std::size_t i = 0;
    for (; i < lookahead_end; ++i) {
        const Addr ahead = lines[i + K];
        hier.prefetchSets(ahead);
        if (l2Raw)
            l2Raw->prefetchSets(ahead);
        const std::uint32_t m = metas[i];
        stepRecord(pcs[i], addrs[i], trace::Trace::gapOf(m),
                   trace::Trace::dependsOf(m),
                   trace::Trace::writeOf(m));
    }
    for (; i < n; ++i) {
        const std::uint32_t m = metas[i];
        stepRecord(pcs[i], addrs[i], trace::Trace::gapOf(m),
                   trace::Trace::dependsOf(m),
                   trace::Trace::writeOf(m));
    }
    return finish();
}

} // namespace prophet::sim
