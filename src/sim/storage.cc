#include "sim/storage.hh"

namespace prophet::sim
{

std::vector<StorageItem>
prophetStorage(std::uint64_t max_table_entries,
               unsigned replacement_bits, unsigned hint_entries,
               std::uint64_t mvb_entries)
{
    std::vector<StorageItem> items;
    // Prophet replacement state: priority bits per metadata entry
    // (48 KB at 196,608 entries x 2 bits).
    items.push_back({"Prophet replacement state",
                     max_table_entries * replacement_bits});
    // Hint buffer: 16-bit PC tag + 3-bit hint per entry (0.19 KB for
    // 128 entries; the paper quotes the same footprint).
    items.push_back({"Hint buffer",
                     static_cast<std::uint64_t>(hint_entries)
                         * (16 + 3)});
    // Multi-path Victim Buffer: 43 bits per entry — 31-bit target,
    // 10-bit tag, 2-bit counter (344 KB at 65,536 entries).
    items.push_back({"Multi-path Victim Buffer", mvb_entries * 43});
    return items;
}

std::vector<StorageItem>
triageStorage()
{
    std::vector<StorageItem> items;
    // Hawkeye replacement for the metadata table: ~13 KB (Section
    // 2.1): sampler tags + occupancy vectors + predictor counters.
    items.push_back({"Hawkeye metadata replacement",
                     std::uint64_t{13} * 1024 * 8});
    // Bloom-filter resizing: tracking ~200K entries costs >200 KB
    // (Section 2.1.3).
    items.push_back({"Bloom filter (resizing)",
                     std::uint64_t{200} * 1024 * 8});
    return items;
}

std::vector<StorageItem>
triangelStorage()
{
    std::vector<StorageItem> items;
    // SRRIP state: 2 bits per metadata entry.
    items.push_back({"SRRIP metadata replacement",
                     std::uint64_t{196608} * 2});
    // PatternConf/ReuseConf: 4+4 bits across a 1K-entry PC table.
    items.push_back({"PatternConf/ReuseConf",
                     std::uint64_t{1024} * 8});
    // Set Dueller: ~2 KB (Section 2.1.3).
    items.push_back({"Set Dueller", std::uint64_t{2} * 1024 * 8});
    return items;
}

std::uint64_t
totalBits(const std::vector<StorageItem> &items)
{
    std::uint64_t sum = 0;
    for (const auto &it : items)
        sum += it.bits;
    return sum;
}

} // namespace prophet::sim
