/**
 * @file
 * The parallel sweep engine: fans (workload x config) simulation
 * jobs — including the multi-run RPG2 tuning and Prophet
 * profile/analyze/run pipelines — across a fixed-size thread pool
 * and merges results deterministically.
 *
 * Every job is an independent System over a shared immutable trace,
 * and each pipeline's internal runs stay sequential inside its job,
 * so a sweep's results are bit-identical to serial execution: the
 * merge is by job index, never by completion order.
 */

#ifndef PROPHET_SIM_SWEEP_HH
#define PROPHET_SIM_SWEEP_HH

#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.hh"
#include "sim/runner.hh"
#include "sim/thread_pool.hh"

namespace prophet::sim
{

/** One (workload x config) simulation job. */
struct SweepJob
{
    std::string workload;
    SystemConfig cfg;
};

/**
 * The standard figure comparison on one workload: the full RPG2
 * pipeline, Triangel, and the full Prophet pipeline.
 */
struct TrioOutcome
{
    Rpg2Outcome rpg2{};
    RunStats triangel{};
    ProphetOutcome prophet{};
};

/**
 * Schedules simulation jobs over a Runner. With threads == 1 the
 * engine degrades to plain serial execution in the calling thread;
 * any thread count produces identical results.
 */
class SweepEngine
{
  public:
    /**
     * @param runner Shared experiment runner (thread-safe caches).
     * @param threads Worker count; 0 = hardware concurrency.
     */
    explicit SweepEngine(Runner &runner, unsigned threads = 0);

    /** Worker count in use. */
    unsigned threads() const;

    /** The underlying runner. */
    Runner &runner() { return runnerRef; }

    /** How tryForEach responds to a failing index. */
    enum class FailurePolicy
    {
        /** Every index runs; failures are collected per index. */
        KeepGoing,

        /**
         * The first failure cancels the token (when one is given);
         * indices not yet started are skipped and reported as
         * cancelled by the caller's convention (their slot stays
         * null — distinguish via the skipped flag in the result).
         */
        FailFast,
    };

    /** Per-index outcome of a tryForEach fan-out. */
    struct JobFailure
    {
        /** Null when the index succeeded. */
        std::exception_ptr error;

        /** True when fail-fast skipped the index before it started. */
        bool skipped = false;

        bool ok() const { return !error && !skipped; }
    };

    /**
     * Run fn(0..n-1), fanned across the pool. Returns when all
     * indices have completed; rethrows the first job exception.
     */
    void forEach(std::size_t n,
                 const std::function<void(std::size_t)> &fn);

    /**
     * Fault-isolated fan-out: run fn(0..n-1) and capture each
     * index's failure instead of rethrowing, so one bad job cannot
     * take down its siblings. Under FailFast the first failure
     * cancels @p token (when non-null) — unwinding in-flight
     * simulations that poll it — and skips indices that have not
     * started. A token fired *externally* (the driver's graceful
     * shutdown) skips not-yet-started indices under either policy:
     * in-flight jobs drain, new ones never start. The returned
     * vector always has n entries, indexed by job, regardless of
     * completion order.
     */
    std::vector<JobFailure>
    tryForEach(std::size_t n,
               const std::function<void(std::size_t)> &fn,
               FailurePolicy policy = FailurePolicy::KeepGoing,
               CancellationToken *token = nullptr);

    /**
     * Run every job and return stats in job order (deterministic
     * merge regardless of completion order).
     */
    std::vector<RunStats> runConfigs(const std::vector<SweepJob> &jobs);

    /**
     * The headline trio on each workload. Baselines are computed
     * first (one job per workload), then the three systems fan out
     * as independent jobs: the RPG2 identify/tune pipeline, the
     * Triangel run, and the Prophet profile/analyze/run pipeline.
     */
    std::map<std::string, TrioOutcome>
    runTrios(const std::vector<std::string> &workloads);

    /**
     * Pre-generate traces and baseline runs for the workloads, one
     * job per workload (useful before derived sweeps whose jobs all
     * consult the baseline).
     */
    void warmBaselines(const std::vector<std::string> &workloads);

  private:
    Runner &runnerRef;
    std::unique_ptr<ThreadPool> pool; ///< null when single-threaded
};

} // namespace prophet::sim

#endif // PROPHET_SIM_SWEEP_HH
