#include "sim/sweep.hh"

#include <atomic>
#include <exception>
#include <mutex>

#include "common/log.hh"

namespace prophet::sim
{

SweepEngine::SweepEngine(Runner &runner, unsigned threads)
    : runnerRef(runner)
{
    unsigned n = ThreadPool::resolveThreads(threads);
    if (n > 1)
        pool = std::make_unique<ThreadPool>(n);
}

unsigned
SweepEngine::threads() const
{
    return pool ? pool->threadCount() : 1;
}

void
SweepEngine::forEach(std::size_t n,
                     const std::function<void(std::size_t)> &fn)
{
    if (!pool) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::mutex errMu;
    std::exception_ptr firstError;
    for (std::size_t i = 0; i < n; ++i) {
        pool->submit([&, i] {
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errMu);
                if (!firstError)
                    firstError = std::current_exception();
            }
        });
    }
    pool->wait();
    if (firstError)
        std::rethrow_exception(firstError);
}

std::vector<SweepEngine::JobFailure>
SweepEngine::tryForEach(std::size_t n,
                        const std::function<void(std::size_t)> &fn,
                        FailurePolicy policy,
                        CancellationToken *token)
{
    std::vector<JobFailure> out(n);
    std::atomic<bool> abort{false};

    auto runOne = [&](std::size_t i) {
        // A fired token skips jobs not yet started under *any*
        // policy: fail-fast fires it on the first failure, and the
        // driver's graceful-shutdown path fires it on SIGINT/SIGTERM
        // — where even keep-going must drain, not start new work.
        if ((policy == FailurePolicy::FailFast
             && abort.load(std::memory_order_relaxed))
            || (token && token->cancelled())) {
            out[i].skipped = true;
            return;
        }
        try {
            fn(i);
        } catch (...) {
            // Each slot is written by exactly one job, so no lock is
            // needed: the pool's wait() publishes every write before
            // the caller reads the vector.
            out[i].error = std::current_exception();
            if (policy == FailurePolicy::FailFast) {
                abort.store(true, std::memory_order_relaxed);
                if (token)
                    token->cancel();
            }
        }
    };

    if (!pool) {
        for (std::size_t i = 0; i < n; ++i)
            runOne(i);
        return out;
    }
    for (std::size_t i = 0; i < n; ++i)
        pool->submit([&, i] { runOne(i); });
    pool->wait();
    return out;
}

std::vector<RunStats>
SweepEngine::runConfigs(const std::vector<SweepJob> &jobs)
{
    std::vector<RunStats> out(jobs.size());
    forEach(jobs.size(), [&](std::size_t i) {
        out[i] = runnerRef.runConfig(jobs[i].workload, jobs[i].cfg);
    });
    return out;
}

void
SweepEngine::warmBaselines(const std::vector<std::string> &workloads)
{
    forEach(workloads.size(), [&](std::size_t i) {
        runnerRef.baseline(workloads[i]);
    });
}

std::map<std::string, TrioOutcome>
SweepEngine::runTrios(const std::vector<std::string> &workloads)
{
    // Duplicate workload names are collapsed up front: two fan-out
    // jobs writing one TrioOutcome slot would race, and duplicate
    // baseline warm-ups would burn a worker on a discarded run.
    std::vector<std::string> unique;
    std::map<std::string, TrioOutcome> out;
    for (const auto &w : workloads)
        if (out.emplace(w, TrioOutcome{}).second)
            unique.push_back(w);

    // Phase 1: one baseline job per workload. RPG2 consults the
    // baseline and the figure metrics normalize to it; computing it
    // up front keeps the fan-out phase from running it redundantly
    // in racing jobs.
    warmBaselines(unique);

    // Phase 2: three independent jobs per workload. Each pipeline's
    // internal multi-run structure (RPG2's distance binary search,
    // Prophet's profile pass) stays sequential within its job.

    static const char *const kSystems[] = {"rpg2", "triangel",
                                           "prophet"};
    std::atomic<std::size_t> completed{0};
    std::size_t total = unique.size() * 3;
    forEach(total, [&](std::size_t i) {
        const std::string &w = unique[i / 3];
        TrioOutcome &slot = out.at(w); // map untouched during fan-out
        switch (i % 3) {
          case 0:
            slot.rpg2 = runnerRef.runRpg2(w);
            break;
          case 1:
            slot.triangel = runnerRef.run("triangel", w);
            break;
          default:
            slot.prophet = runnerRef.runProphet(w);
            break;
        }
        // Progress to stderr: stdout stays bit-identical across
        // thread counts (completion order is scheduling-dependent).
        prophet_infof("  [%zu/%zu] %s %s done", ++completed, total,
                      w.c_str(), kSystems[i % 3]);
    });
    return out;
}

} // namespace prophet::sim
