/**
 * @file
 * The pipeline registry: the single source of truth for every
 * prefetcher pipeline the evaluation can run. Each entry carries the
 * canonical name, the display name the figures print, the parameters
 * the pipeline accepts (with types and documentation, so the CLI can
 * list them and the spec parser can reject typos), and the run
 * functor that turns a validated parameter bag into a simulation.
 *
 * Adding a pipeline is one registration here — the spec parser, the
 * experiment driver, the sinks' column titles, and `prophet
 * list-pipelines` all derive from this table. Nothing is spelled
 * twice.
 */

#ifndef PROPHET_SIM_PIPELINES_HH
#define PROPHET_SIM_PIPELINES_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/error.hh"
#include "sim/system.hh"

namespace prophet::sim
{

class Runner;

/**
 * An unknown pipeline, unknown parameter, or ill-typed value. Part
 * of the prophet::Error taxonomy (code PipelineConfig), so the
 * driver and CLI classify it without string matching.
 */
class PipelineError : public Error
{
  public:
    explicit PipelineError(const std::string &message,
                           ErrorContext ctx = {})
        : Error(ErrorCode::PipelineConfig, message, std::move(ctx))
    {}
};

/** A typed pipeline-parameter value. */
struct ParamValue
{
    enum class Type { Number, Bool, String, StringList };

    Type type = Type::Number;
    double num = 0.0;
    bool flag = false;
    std::string str;
    std::vector<std::string> list;

    static ParamValue makeNumber(double v);
    static ParamValue makeBool(bool v);
    static ParamValue makeString(std::string v);
    static ParamValue makeList(std::vector<std::string> v);

    /** Compact human form ("4", "0.05", "true", "a,b") for labels. */
    std::string display() const;
};

/** The name of a ParamValue::Type ("number", ...), for messages. */
std::string paramTypeName(ParamValue::Type type);

/**
 * One pipeline to run: the registry name, an optional display label
 * (sweep columns, figure stage names), and the parameter bag. The
 * bag holds only values explicitly set — the run functor supplies
 * the registry defaults for everything absent.
 */
struct PipelineInstance
{
    std::string name;
    std::string label; ///< empty = derive from the registry
    std::map<std::string, ParamValue> params;

    PipelineInstance() = default;
    /*implicit*/ PipelineInstance(std::string n) : name(std::move(n))
    {}
    /*implicit*/ PipelineInstance(const char *n) : name(n) {}

    /** The key results are reported under (label, else name). */
    const std::string &resultName() const
    {
        return label.empty() ? name : label;
    }

    bool has(const std::string &key) const;

    /**
     * Typed accessors: the default when the key is absent, the set
     * value otherwise. A present-but-ill-typed value throws
     * PipelineError (validatePipeline rejects it up front, so the
     * run functors never see one from a parsed spec).
     */
    double number(const std::string &key, double def) const;
    bool boolean(const std::string &key, bool def) const;
    std::string string(const std::string &key,
                       const std::string &def) const;
    /** Null when absent. */
    const std::vector<std::string> *
    stringList(const std::string &key) const;
};

/** One parameter a pipeline accepts. */
struct ParamInfo
{
    std::string key;
    ParamValue::Type type;
    std::string doc; ///< one line for `prophet list-pipelines`

    /**
     * Number constraints, enforced by validatePipeline: the value
     * must lie in [minValue, maxValue], and integral parameters
     * reject fractions — a "degree": 2.5 must fail loudly, never
     * truncate into a silently different experiment (and bounds
     * keep the double -> unsigned casts in the run functors
     * defined).
     */
    bool integral = false;
    double minValue = 0.0;
    double maxValue = 9007199254740992.0; /* 2^53 */
};

/** One registry entry. */
struct PipelineDef
{
    std::string name;        ///< canonical spec name
    std::string displayName; ///< figure column title
    /** Normalizes to / consults the per-workload baseline run. */
    bool needsBaseline = false;
    std::vector<ParamInfo> params;
    /** Extra semantic checks beyond key/type (may be null). */
    std::function<void(const PipelineInstance &)> validate;
    /** Configure and run on one workload. Thread-safe via Runner. */
    std::function<RunStats(Runner &, const PipelineInstance &,
                           const std::string &)>
        run;

    const ParamInfo *findParam(const std::string &key) const;
};

/** Every registered pipeline, in display order. */
const std::vector<PipelineDef> &pipelineRegistry();

/** Registry lookup; nullptr when unknown. */
const PipelineDef *findPipeline(const std::string &name);

/** The registered canonical names, in display order. */
const std::vector<std::string> &pipelineNames();

/** Space-separated names for error messages. */
std::string registeredPipelineList();

/** Column header for a name ("rpg2" -> "RPG2"; unknown -> name). */
std::string pipelineDisplayName(const std::string &name);

/** Column title of an instance (label, else the display name). */
std::string pipelineColumnTitle(const PipelineInstance &p);

/**
 * Full validation of an instance: the name must be registered, every
 * parameter key accepted with a matching type, and the pipeline's
 * own semantic checks must pass. Throws PipelineError naming the
 * offender and what would have been accepted.
 */
void validatePipeline(const PipelineInstance &p);

} // namespace prophet::sim

#endif // PROPHET_SIM_PIPELINES_HH
