/**
 * @file
 * Experiment orchestration: generates/caches workload traces, runs
 * configured systems over them, and implements the multi-run
 * workflows the evaluation needs — Prophet's profile/analyze/learn
 * pipeline (Figure 5) and RPG2's identify/tune pipeline.
 */

#ifndef PROPHET_SIM_RUNNER_HH
#define PROPHET_SIM_RUNNER_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/analyzer.hh"
#include "core/learner.hh"
#include "rpg2/kernel_id.hh"
#include "sim/pipelines.hh"
#include "sim/system.hh"
#include "trace/trace_cache.hh"

namespace prophet::sim
{

/** A Prophet run plus the artifacts that produced it. */
struct ProphetOutcome
{
    core::OptimizedBinary binary{};
    core::ProfileSnapshot profile{};
    RunStats stats{};
};

/** An RPG2 run plus the plan that produced it. */
struct Rpg2Outcome
{
    std::vector<rpg2::Kernel> kernels{};
    std::int64_t tunedDistance = 0;
    RunStats stats{};
};

/**
 * The experiment runner. One instance caches traces and baseline
 * runs across the experiments of a bench binary.
 *
 * Thread safety: all public methods may be called concurrently from
 * sweep-engine workers. Traces are generated once, stored immutably
 * behind shared_ptr<const Trace>, and shared by every System run;
 * the generation and baseline caches are mutex-guarded. When two
 * workers race to fill a cache slot, both compute the (deterministic)
 * value and the first insert wins, so results never depend on
 * scheduling.
 */
class Runner
{
  public:
    /**
     * @param base Base configuration every run derives from
     *        (Table 1 by default).
     * @param records Trace-length override (0 = workload default).
     */
    explicit Runner(SystemConfig base = SystemConfig::table1(),
                    std::size_t records = 0);

    /**
     * Attach an on-disk trace cache: trace generation first consults
     * the cache and stores fresh generations back. Cached loads are
     * bit-identical to generation (the binary format round-trips
     * every record field), so results cannot depend on cache state.
     * Pass nullptr to detach. The cache must outlive the Runner.
     */
    void setTraceCache(std::shared_ptr<trace::TraceCache> cache);

    /** The attached trace cache (may be null). */
    trace::TraceCache *traceCache() const { return cache.get(); }

    /**
     * Attach a cancellation token: every System this Runner builds
     * from here on polls it and aborts with
     * Error(ErrorCode::Cancelled) once it fires (the sweep driver's
     * fail-fast policy). nullptr detaches. The token must outlive
     * the runs; polling an attached-but-idle token is bit-identical
     * to running without one.
     */
    void setCancellation(const CancellationToken *token);

    /** The attached cancellation token (may be null). */
    const CancellationToken *cancellation() const { return cancel; }

    /**
     * Per-thread job token: Systems built on the *calling thread*
     * poll @p token instead of the runner-wide one until it is
     * cleared (nullptr). The driver's watchdog scopes one around
     * each job attempt so a deadline cancels that job alone; with no
     * job token set, behaviour is exactly the runner-wide token's.
     * The token must outlive the scoped runs.
     */
    static void setThreadJobCancellation(
        const CancellationToken *token);

    /**
     * Seed the baseline cache with externally obtained stats (the
     * resume journal's replayed baselines), so metric derivation and
     * RPG2 on a resumed run skip the re-simulation. First insert
     * wins, matching the concurrent-compute semantics of baseline().
     */
    void injectBaseline(const std::string &workload, RunStats stats);

    /** The (cached) trace of a workload. */
    const trace::Trace &traceFor(const std::string &workload);

    /**
     * Shared ownership of the immutable trace, for callers that
     * outlive or run concurrently with this Runner's cache.
     */
    std::shared_ptr<const trace::Trace>
    traceShared(const std::string &workload);

    /** The workload's indirect resolver (may be nullptr). */
    const trace::IndirectResolver *
    resolverFor(const std::string &workload);

    /** Run an explicit configuration over a workload. */
    RunStats runConfig(const std::string &workload,
                       const SystemConfig &cfg);

    /**
     * Run one registered pipeline on one workload — the uniform
     * entry every experiment goes through. The instance's name is
     * looked up in the pipeline registry (sim/pipelines.hh) and its
     * parameter bag configures the run; an unknown name throws
     * PipelineError naming the registered pipelines. Thread-safe
     * like every other public method.
     */
    RunStats run(const PipelineInstance &pipeline,
                 const std::string &workload);

    /** Cached baseline (no temporal prefetcher). */
    const RunStats &baseline(const std::string &workload);

    /**
     * Profile a workload with the simplified temporal prefetcher
     * (Step 1) and return the counter snapshot. Snapshots are
     * deterministic per workload and cached, so the learning
     * pipelines re-profile for free.
     */
    core::ProfileSnapshot profileWorkload(const std::string &workload);

    /**
     * The full Prophet pipeline on one input: profile, analyze,
     * run the optimized binary.
     */
    ProphetOutcome runProphet(
        const std::string &workload,
        const core::AnalyzerConfig &acfg = {},
        const core::ProphetConfig &pcfg = core::ProphetConfig{});

    /** Run Prophet with an existing optimized binary (learning). */
    RunStats runProphetWithBinary(
        const std::string &workload,
        const core::OptimizedBinary &binary,
        const core::ProphetConfig &pcfg = core::ProphetConfig{});

    /**
     * The full RPG2 pipeline: identify kernels from a baseline
     * profile, binary-search the distance, report the best run.
     * Workloads with no qualified kernels return the baseline run
     * (RPG2 inserts nothing).
     */
    Rpg2Outcome runRpg2(const std::string &workload);

    // ---- serve-mode residency control -------------------------------

    /** One resident (in-memory) trace, for eviction decisions. */
    struct ResidentTrace
    {
        std::string workload;
        std::size_t bytes = 0;   ///< SoA array footprint estimate
        std::uint64_t lastUse = 0; ///< monotonic use tick (LRU order)
        bool inUse = false;      ///< pinned by an in-flight run
    };

    /** Every resident trace, unordered. */
    std::vector<ResidentTrace> residentTraces();

    /** Total estimated bytes of all resident traces. */
    std::size_t residentTraceBytes();

    /**
     * Evict the least-recently-used resident trace that no run
     * currently pins (shared_ptr use count 1). Returns the bytes
     * freed, 0 when nothing is evictable. The next request for the
     * workload transparently reloads from the on-disk trace cache
     * (or regenerates). Callers that hand out unpinned references
     * (the serve daemon) must only evict while no request is in
     * flight; pinned traces are skipped regardless.
     */
    std::size_t evictLruTrace();

    /** The base configuration (benches derive variants from it). */
    const SystemConfig &baseConfig() const { return base; }

    /** Speedup of stats over the cached baseline of a workload. */
    double speedup(const std::string &workload, const RunStats &stats);

    /** DRAM traffic normalized to the workload baseline. */
    double trafficNorm(const std::string &workload,
                       const RunStats &stats);

    /** Coverage: demand-miss reduction vs the workload baseline. */
    double coverage(const std::string &workload,
                    const RunStats &stats);

  private:
    SystemConfig base;
    std::size_t recordsOverride;
    std::shared_ptr<trace::TraceCache> cache; ///< optional
    const CancellationToken *cancel = nullptr; ///< optional

    /**
     * Guards the caches below. Held only around lookups and
     * inserts, never across a simulation or trace generation, so
     * workers overlap fully on the expensive parts.
     */
    std::mutex cacheMu;

    std::map<std::string, trace::GeneratorPtr> generators;
    std::map<std::string, std::shared_ptr<const trace::Trace>> traces;
    std::map<std::string, RunStats> baselines;
    std::map<std::string, core::ProfileSnapshot> profiles;

    /** LRU bookkeeping for evictLruTrace: a monotonic tick stamped
     *  per workload on every resident-trace use (under cacheMu). */
    std::uint64_t useTick = 0;
    std::map<std::string, std::uint64_t> lastUse;

    void ensureWorkload(const std::string &workload);
};

} // namespace prophet::sim

#endif // PROPHET_SIM_RUNNER_HH
