/**
 * @file
 * Table 1 rendering: the simulated machine's parameters as a
 * human-readable table, shared by the `bench_table1` binary and the
 * driver's `"report": "system-config"` specs so both print the exact
 * same bytes.
 */

#ifndef PROPHET_SIM_CONFIG_REPORT_HH
#define PROPHET_SIM_CONFIG_REPORT_HH

#include <string>

#include "sim/system_config.hh"

namespace prophet::sim
{

/** The full Table 1 report, heading included, ready for stdout. */
std::string systemConfigReport(const SystemConfig &cfg);

} // namespace prophet::sim

#endif // PROPHET_SIM_CONFIG_REPORT_HH
