#include "sim/runner.hh"

#include "common/log.hh"
#include "common/metrics.hh"
#include "common/span_trace.hh"
#include "rpg2/distance_tuner.hh"
#include "workloads/registry.hh"

namespace prophet::sim
{

Runner::Runner(SystemConfig base_cfg, std::size_t records)
    : base(std::move(base_cfg)), recordsOverride(records)
{}

void
Runner::setTraceCache(std::shared_ptr<trace::TraceCache> c)
{
    std::lock_guard<std::mutex> lock(cacheMu);
    cache = std::move(c);
}

void
Runner::setCancellation(const CancellationToken *token)
{
    std::lock_guard<std::mutex> lock(cacheMu);
    cancel = token;
}

namespace
{
/**
 * The calling thread's job-scoped token. thread_local rather than a
 * Runner member so the watchdog needs no per-job plumbing through
 * the pipeline registry: whatever Systems a job builds on its worker
 * thread — including nested baseline/profile runs — poll this token.
 */
thread_local const CancellationToken *tl_job_cancel = nullptr;
} // anonymous namespace

void
Runner::setThreadJobCancellation(const CancellationToken *token)
{
    tl_job_cancel = token;
}

void
Runner::injectBaseline(const std::string &workload, RunStats stats)
{
    std::lock_guard<std::mutex> lock(cacheMu);
    baselines.emplace(workload, std::move(stats));
}

namespace
{
/**
 * Estimated resident footprint of one trace: the four SoA arrays
 * (pc[] + addr[] + precomputed lineAddr[] at 8 bytes each, packed
 * meta[] at 4), which dominate a Runner's memory by orders of
 * magnitude over baselines and profiles.
 */
std::size_t
residentBytes(const trace::Trace &t)
{
    return t.size() * (3 * sizeof(std::uint64_t)
                       + sizeof(std::uint32_t));
}
} // anonymous namespace

void
Runner::ensureWorkload(const std::string &workload)
{
    std::shared_ptr<trace::TraceCache> disk;
    {
        std::lock_guard<std::mutex> lock(cacheMu);
        if (traces.count(workload)) {
            // Residency hit: the serve daemon's warm-request payoff
            // (the trace load the second request never pays), and
            // the tick evictLruTrace orders its LRU scan by.
            static metrics::Counter &resident_hits =
                metrics::counter("runner.trace_resident_hits");
            resident_hits.inc();
            lastUse[workload] = ++useTick;
            return;
        }
        disk = cache;
    }
    // Generate outside the lock: generation is deterministic per
    // workload name, so racing workers build identical traces and
    // the first insert wins (the loser's copy is discarded).
    // Constructing the generator is cheap and always happens — the
    // resolver lives on the generator — but the expensive generate()
    // is skipped when the on-disk cache has the trace.
    span::Span load_span("trace-load " + workload, "trace");
    metrics::ScopedTimer load_timer(
        metrics::histogram("phase.trace_load_ns"));
    auto gen = workloads::makeWorkload(workload, recordsOverride);
    trace::Trace generated;
    if (!disk || !disk->load(workload, recordsOverride, generated)) {
        generated = gen->generate();
        metrics::counter("runner.trace_generated").inc();
        // A failed store is not a run failure — the freshly generated
        // trace is in hand — but it means the next run regenerates,
        // so surface it.
        if (disk
            && !disk->store(workload, recordsOverride, generated)) {
            std::string msg = "trace-cache: store failed for "
                + workload
                + " (disk full or I/O error); trace will be "
                  "regenerated next run";
            prophet_warn(msg.c_str());
        }
    }
    auto tr =
        std::make_shared<const trace::Trace>(std::move(generated));

    std::lock_guard<std::mutex> lock(cacheMu);
    auto [it, inserted] = traces.emplace(workload, std::move(tr));
    (void)it;
    if (inserted)
        generators.emplace(workload, std::move(gen));
    lastUse[workload] = ++useTick;
}

std::vector<Runner::ResidentTrace>
Runner::residentTraces()
{
    std::lock_guard<std::mutex> lock(cacheMu);
    std::vector<ResidentTrace> out;
    out.reserve(traces.size());
    for (const auto &[w, tr] : traces) {
        ResidentTrace r;
        r.workload = w;
        r.bytes = residentBytes(*tr);
        auto it = lastUse.find(w);
        r.lastUse = it == lastUse.end() ? 0 : it->second;
        r.inUse = tr.use_count() > 1;
        out.push_back(std::move(r));
    }
    return out;
}

std::size_t
Runner::residentTraceBytes()
{
    std::lock_guard<std::mutex> lock(cacheMu);
    std::size_t total = 0;
    for (const auto &[w, tr] : traces) {
        (void)w;
        total += residentBytes(*tr);
    }
    return total;
}

std::size_t
Runner::evictLruTrace()
{
    std::lock_guard<std::mutex> lock(cacheMu);
    auto victim = traces.end();
    std::uint64_t oldest = ~std::uint64_t{0};
    for (auto it = traces.begin(); it != traces.end(); ++it) {
        // use_count > 1 = some run still holds the shared_ptr
        // (runConfig pins it for the duration of the simulation);
        // evicting would not free memory and would orphan the
        // generator whose resolver that run may be using.
        if (it->second.use_count() > 1)
            continue;
        auto lu = lastUse.find(it->first);
        std::uint64_t tick = lu == lastUse.end() ? 0 : lu->second;
        if (tick < oldest) {
            oldest = tick;
            victim = it;
        }
    }
    if (victim == traces.end())
        return 0;
    std::size_t freed = residentBytes(*victim->second);
    prophet_infof("runner: evicting resident trace %s (%zu bytes)",
                  victim->first.c_str(), freed);
    generators.erase(victim->first);
    lastUse.erase(victim->first);
    traces.erase(victim);
    return freed;
}

const trace::Trace &
Runner::traceFor(const std::string &workload)
{
    return *traceShared(workload);
}

std::shared_ptr<const trace::Trace>
Runner::traceShared(const std::string &workload)
{
    ensureWorkload(workload);
    std::lock_guard<std::mutex> lock(cacheMu);
    return traces.at(workload);
}

const trace::IndirectResolver *
Runner::resolverFor(const std::string &workload)
{
    ensureWorkload(workload);
    std::lock_guard<std::mutex> lock(cacheMu);
    // The generator itself is immutable after generate(); resolver()
    // hands out a const view safe for concurrent use.
    return generators.at(workload)->resolver();
}

RunStats
Runner::runConfig(const std::string &workload, const SystemConfig &cfg)
{
    // Keep the trace alive independently of the cache map; each job
    // simulates its own System over the shared immutable trace.
    std::shared_ptr<const trace::Trace> tr = traceShared(workload);
    span::Span sim_span("simulate " + workload, "sim");
    System system(cfg, resolverFor(workload));
    if (tl_job_cancel) {
        system.setCancellation(tl_job_cancel);
    } else {
        std::lock_guard<std::mutex> lock(cacheMu);
        if (cancel)
            system.setCancellation(cancel);
    }
    return system.run(*tr);
}

const RunStats &
Runner::baseline(const std::string &workload)
{
    {
        std::lock_guard<std::mutex> lock(cacheMu);
        auto it = baselines.find(workload);
        if (it != baselines.end())
            return it->second;
    }
    SystemConfig cfg = base;
    cfg.l2Pf = L2PfKind::None;
    cfg.rpg2Plan = rpg2::Rpg2Plan{};
    // Simulate outside the lock; concurrent callers compute the same
    // deterministic stats and the first emplace wins. std::map nodes
    // are stable, so returned references stay valid for the Runner's
    // lifetime.
    RunStats stats = runConfig(workload, cfg);
    std::lock_guard<std::mutex> lock(cacheMu);
    return baselines.emplace(workload, std::move(stats)).first->second;
}

RunStats
Runner::run(const PipelineInstance &pipeline,
            const std::string &workload)
{
    // Full validation on every entry — programmatic callers get the
    // same parameter checking as parsed specs, so an out-of-range
    // knob can never silently run a different configuration.
    validatePipeline(pipeline);
    return findPipeline(pipeline.name)
        ->run(*this, pipeline, workload);
}

core::ProfileSnapshot
Runner::profileWorkload(const std::string &workload)
{
    {
        std::lock_guard<std::mutex> lock(cacheMu);
        auto it = profiles.find(workload);
        if (it != profiles.end())
            return it->second;
    }
    std::shared_ptr<const trace::Trace> tr = traceShared(workload);
    span::Span profile_span("profile " + workload, "sim");
    SystemConfig cfg = base;
    cfg.l2Pf = L2PfKind::Simplified;
    // Profiling is the offline compile step that produces the
    // optimized binary's hints: it must see the whole access stream
    // regardless of how the timing simulation is sampled, or sampled
    // Prophet runs would measure a crippled binary, not a sampled
    // machine.
    cfg.sampling = SamplingConfig{};
    // Published under "phase.profile_ns": the offline pass is a
    // per-workload cost amortized across a sweep, not part of the
    // timing-simulation throughput the phase split measures.
    cfg.profilingRun = true;
    System system(cfg, resolverFor(workload));
    if (tl_job_cancel) {
        system.setCancellation(tl_job_cancel);
    } else {
        std::lock_guard<std::mutex> lock(cacheMu);
        if (cancel)
            system.setCancellation(cancel);
    }
    system.run(*tr);
    prophet_assert(system.prophet() != nullptr);
    core::ProfileSnapshot snap = system.prophet()->takeSnapshot();
    // Concurrent profilers compute the same deterministic snapshot;
    // the first emplace wins and the caller gets a copy either way.
    std::lock_guard<std::mutex> lock(cacheMu);
    return profiles.emplace(workload, std::move(snap)).first->second;
}

ProphetOutcome
Runner::runProphet(const std::string &workload,
                   const core::AnalyzerConfig &acfg,
                   const core::ProphetConfig &pcfg)
{
    ProphetOutcome out;
    out.profile = profileWorkload(workload);
    core::Analyzer analyzer(acfg);
    out.binary = analyzer.analyze(out.profile);
    out.stats = runProphetWithBinary(workload, out.binary, pcfg);
    return out;
}

RunStats
Runner::runProphetWithBinary(const std::string &workload,
                             const core::OptimizedBinary &binary,
                             const core::ProphetConfig &pcfg)
{
    SystemConfig cfg = base;
    cfg.l2Pf = L2PfKind::Prophet;
    cfg.prophet = pcfg;
    cfg.binary = binary;
    return runConfig(workload, cfg);
}

Rpg2Outcome
Runner::runRpg2(const std::string &workload)
{
    Rpg2Outcome out;
    const RunStats &base_stats = baseline(workload);
    // Pin the trace for the whole pipeline: kernel identification
    // reads it outside runConfig, and a pinned trace can never be
    // evicted from under us by a concurrent evictLruTrace.
    std::shared_ptr<const trace::Trace> tr = traceShared(workload);
    const trace::Trace &t = *tr;
    const trace::IndirectResolver *resolver = resolverFor(workload);

    out.kernels =
        rpg2::identifyKernels(t, base_stats.pcMisses, resolver);
    if (out.kernels.empty()) {
        // No qualified kernels (mcf/omnetpp/soplex): RPG2 leaves the
        // binary unchanged, so performance equals the baseline.
        out.stats = base_stats;
        out.tunedDistance = 0;
        return out;
    }

    // Binary-search the prefetch distance on measured IPC.
    std::map<std::int64_t, RunStats> runs;
    auto evaluate = [&](std::int64_t d) {
        SystemConfig cfg = base;
        cfg.l2Pf = L2PfKind::None;
        cfg.rpg2Plan = rpg2::buildPlan(out.kernels, d);
        RunStats s = runConfig(workload, cfg);
        double ipc = s.ipc;
        runs.emplace(d, std::move(s));
        return ipc;
    };
    auto tuned = rpg2::tuneDistance(evaluate, {1, 64});
    out.tunedDistance = tuned.bestDistance;
    out.stats = runs.at(tuned.bestDistance);
    return out;
}

double
Runner::speedup(const std::string &workload, const RunStats &stats)
{
    const RunStats &b = baseline(workload);
    prophet_assert(b.ipc > 0.0);
    return stats.ipc / b.ipc;
}

double
Runner::trafficNorm(const std::string &workload, const RunStats &stats)
{
    const RunStats &b = baseline(workload);
    if (b.dramTraffic() == 0)
        return 1.0;
    return static_cast<double>(stats.dramTraffic())
        / static_cast<double>(b.dramTraffic());
}

double
Runner::coverage(const std::string &workload, const RunStats &stats)
{
    const RunStats &b = baseline(workload);
    if (b.l2DemandMisses == 0)
        return 0.0;
    double reduced = static_cast<double>(b.l2DemandMisses)
        - static_cast<double>(stats.l2DemandMisses);
    return std::max(0.0, reduced)
        / static_cast<double>(b.l2DemandMisses);
}

} // namespace prophet::sim
