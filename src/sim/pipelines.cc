#include "sim/pipelines.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/analyzer.hh"
#include "core/learner.hh"
#include "sim/runner.hh"
#include "workloads/registry.hh"

namespace prophet::sim
{

// ------------------------------------------------------- ParamValue

ParamValue
ParamValue::makeNumber(double v)
{
    ParamValue p;
    p.type = Type::Number;
    p.num = v;
    return p;
}

ParamValue
ParamValue::makeBool(bool v)
{
    ParamValue p;
    p.type = Type::Bool;
    p.flag = v;
    return p;
}

ParamValue
ParamValue::makeString(std::string v)
{
    ParamValue p;
    p.type = Type::String;
    p.str = std::move(v);
    return p;
}

ParamValue
ParamValue::makeList(std::vector<std::string> v)
{
    ParamValue p;
    p.type = Type::StringList;
    p.list = std::move(v);
    return p;
}

std::string
ParamValue::display() const
{
    switch (type) {
      case Type::Number: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%g", num);
        return buf;
      }
      case Type::Bool:
        return flag ? "true" : "false";
      case Type::String:
        return str;
      case Type::StringList: {
        std::string out;
        for (const auto &s : list) {
            if (!out.empty())
                out += ",";
            out += s;
        }
        return out;
      }
    }
    return {};
}

std::string
paramTypeName(ParamValue::Type type)
{
    switch (type) {
      case ParamValue::Type::Number:
        return "number";
      case ParamValue::Type::Bool:
        return "boolean";
      case ParamValue::Type::String:
        return "string";
      case ParamValue::Type::StringList:
        return "list of strings";
    }
    return "value";
}

// ------------------------------------------------- PipelineInstance

namespace
{

[[noreturn]] void
typeFail(const std::string &key, ParamValue::Type want)
{
    throw PipelineError("parameter \"" + key + "\" must be a "
                        + paramTypeName(want));
}

} // anonymous namespace

bool
PipelineInstance::has(const std::string &key) const
{
    return params.count(key) != 0;
}

double
PipelineInstance::number(const std::string &key, double def) const
{
    auto it = params.find(key);
    if (it == params.end())
        return def;
    if (it->second.type != ParamValue::Type::Number)
        typeFail(key, ParamValue::Type::Number);
    return it->second.num;
}

bool
PipelineInstance::boolean(const std::string &key, bool def) const
{
    auto it = params.find(key);
    if (it == params.end())
        return def;
    if (it->second.type != ParamValue::Type::Bool)
        typeFail(key, ParamValue::Type::Bool);
    return it->second.flag;
}

std::string
PipelineInstance::string(const std::string &key,
                         const std::string &def) const
{
    auto it = params.find(key);
    if (it == params.end())
        return def;
    if (it->second.type != ParamValue::Type::String)
        typeFail(key, ParamValue::Type::String);
    return it->second.str;
}

const std::vector<std::string> *
PipelineInstance::stringList(const std::string &key) const
{
    auto it = params.find(key);
    if (it == params.end())
        return nullptr;
    if (it->second.type != ParamValue::Type::StringList)
        typeFail(key, ParamValue::Type::StringList);
    return &it->second.list;
}

// --------------------------------------------------------- registry

const ParamInfo *
PipelineDef::findParam(const std::string &key) const
{
    for (const auto &info : params)
        if (info.key == key)
            return &info;
    return nullptr;
}

namespace
{

void
requireOneOf(const PipelineInstance &p, const std::string &key,
             const std::string &def,
             const std::vector<std::string> &allowed)
{
    std::string v = p.string(key, def);
    if (std::find(allowed.begin(), allowed.end(), v) != allowed.end())
        return;
    std::string msg = "parameter \"" + key + "\" of pipeline \""
        + p.name + "\" must be one of:";
    for (const auto &a : allowed)
        msg += " " + a;
    throw PipelineError(msg + " (got \"" + v + "\")");
}

RunStats
runKind(Runner &runner, const std::string &workload, L2PfKind kind)
{
    SystemConfig cfg = runner.baseConfig();
    cfg.l2Pf = kind;
    return runner.runConfig(workload, cfg);
}

/** Shared by "triage" (degree default 1) and "triage4" (fixed 4). */
std::vector<ParamInfo>
triageParams(bool with_degree)
{
    std::vector<ParamInfo> params;
    if (with_degree)
        params.push_back({"degree", ParamValue::Type::Number,
                          "prefetch degree: 1 or 4 (default 1)",
                          true, 1.0, 4.0});
    params.push_back(
        {"meta_replacement", ParamValue::Type::String,
         "metadata replacement: hawkeye srrip lru plru brrip random "
         "(default hawkeye)"});
    params.push_back({"bloom_resizing", ParamValue::Type::Bool,
                      "Bloom-filter-driven table resizing (default "
                      "true)"});
    return params;
}

void
validateTriage(const PipelineInstance &p)
{
    double degree = p.number("degree", 1.0);
    if (degree != 1.0 && degree != 4.0)
        throw PipelineError(
            "parameter \"degree\" of pipeline \"" + p.name
            + "\" must be 1 or 4 (the simulated Triage points)");
    requireOneOf(p, "meta_replacement", "hawkeye",
                 {"hawkeye", "srrip", "lru", "plru", "brrip",
                  "random"});
}

RunStats
runTriage(Runner &runner, const PipelineInstance &p,
          const std::string &workload, unsigned default_degree)
{
    SystemConfig cfg = runner.baseConfig();
    cfg.triage.metaReplacement =
        p.string("meta_replacement", cfg.triage.metaReplacement);
    cfg.triage.bloomResizing =
        p.boolean("bloom_resizing", cfg.triage.bloomResizing);
    unsigned degree = static_cast<unsigned>(
        p.number("degree", default_degree));
    cfg.l2Pf = degree >= 4 ? L2PfKind::Triage4 : L2PfKind::Triage;
    return runner.runConfig(workload, cfg);
}

const std::vector<std::string> &
prophetFeatureNames()
{
    static const std::vector<std::string> names = {
        "replacement", "insertion", "mvb", "resizing"};
    return names;
}

void
validateProphet(const PipelineInstance &p)
{
    // Numeric ranges/integrality are enforced generically from the
    // ParamInfo constraints; only the cross-parameter and enum
    // checks live here.
    if (const auto *features = p.stringList("features")) {
        const auto &known = prophetFeatureNames();
        for (const auto &f : *features)
            if (std::find(known.begin(), known.end(), f)
                == known.end()) {
                std::string msg = "unknown Prophet feature \"" + f
                    + "\" (known:";
                for (const auto &k : known)
                    msg += " " + k;
                throw PipelineError(msg + ")");
            }
    }
    requireOneOf(p, "binary", "profile", {"profile", "none"});
    if (const auto *learn = p.stringList("learn")) {
        if (p.string("binary", "profile") == "none")
            throw PipelineError(
                "pipeline \"" + p.name + "\": \"learn\" conflicts "
                "with \"binary\": \"none\" (learning produces the "
                "binary)");
        if (learn->empty())
            throw PipelineError("parameter \"learn\" of pipeline \""
                                + p.name
                                + "\" must name at least one "
                                  "workload");
        for (const auto &w : *learn)
            if (!workloads::isKnown(w))
                throw PipelineError(
                    "parameter \"learn\" of pipeline \"" + p.name
                    + "\" names unknown workload \"" + w + "\"");
    }
}

RunStats
runProphetPipeline(Runner &runner, const PipelineInstance &p,
                   const std::string &workload)
{
    core::AnalyzerConfig acfg;
    acfg.elAcc = p.number("el_acc", acfg.elAcc);
    acfg.nBits =
        static_cast<unsigned>(p.number("n_bits", acfg.nBits));
    acfg.hintCapacity = static_cast<unsigned>(
        p.number("hint_capacity", acfg.hintCapacity));

    core::ProphetConfig pcfg;
    pcfg.degree =
        static_cast<unsigned>(p.number("degree", pcfg.degree));
    pcfg.mvbEntries = static_cast<unsigned>(
        p.number("mvb_entries", pcfg.mvbEntries));
    pcfg.mvbCandidates = static_cast<unsigned>(
        p.number("mvb_candidates", pcfg.mvbCandidates));
    if (const auto *features = p.stringList("features")) {
        core::ProphetFeatures f{false, false, false, false};
        for (const auto &name : *features) {
            if (name == "replacement")
                f.replacement = true;
            else if (name == "insertion")
                f.insertion = true;
            else if (name == "mvb")
                f.mvb = true;
            else if (name == "resizing")
                f.resizing = true;
        }
        pcfg.features = f;
    }

    // "binary": "none" models running the unmodified binary (no
    // hints, no CSR — the figures' "Disable" bars).
    if (p.string("binary", "profile") == "none")
        return runner.runProphetWithBinary(
            workload, core::OptimizedBinary{}, pcfg);

    // "learn": profile the listed inputs in order, merge them with
    // the paper's learning rule, and evaluate the single merged
    // binary (Figures 13/14). Re-learning the prefix from scratch is
    // bit-identical to the incremental loop — Learner::learn is
    // deterministic and order-dependent — and the Runner's profile
    // cache makes the repeats cheap.
    if (const auto *learn = p.stringList("learn")) {
        core::Learner learner;
        for (const auto &input : *learn)
            learner.learn(runner.profileWorkload(input));
        core::Analyzer analyzer(acfg);
        return runner.runProphetWithBinary(
            workload, analyzer.analyze(learner.merged()), pcfg);
    }

    // Default: the full profile/analyze/run pipeline on the
    // evaluated workload itself.
    return runner.runProphet(workload, acfg, pcfg).stats;
}

std::vector<PipelineDef>
buildRegistry()
{
    std::vector<PipelineDef> defs;

    {
        PipelineDef d;
        d.name = "baseline";
        d.displayName = "Baseline";
        d.needsBaseline = true;
        d.run = [](Runner &r, const PipelineInstance &,
                   const std::string &w) { return r.baseline(w); };
        defs.push_back(std::move(d));
    }
    {
        PipelineDef d;
        d.name = "rpg2";
        d.displayName = "RPG2";
        d.needsBaseline = true; // kernel identification profiles it
        d.run = [](Runner &r, const PipelineInstance &,
                   const std::string &w) {
            return r.runRpg2(w).stats;
        };
        defs.push_back(std::move(d));
    }
    {
        PipelineDef d;
        d.name = "triage";
        d.displayName = "Triage";
        d.params = triageParams(true);
        d.validate = validateTriage;
        d.run = [](Runner &r, const PipelineInstance &p,
                   const std::string &w) {
            return runTriage(r, p, w, 1);
        };
        defs.push_back(std::move(d));
    }
    {
        PipelineDef d;
        d.name = "triage4";
        d.displayName = "Triage4";
        d.params = triageParams(false);
        d.validate = validateTriage;
        d.run = [](Runner &r, const PipelineInstance &p,
                   const std::string &w) {
            return runTriage(r, p, w, 4);
        };
        defs.push_back(std::move(d));
    }
    {
        PipelineDef d;
        d.name = "triangel";
        d.displayName = "Triangel";
        d.run = [](Runner &r, const PipelineInstance &,
                   const std::string &w) {
            return runKind(r, w, L2PfKind::Triangel);
        };
        defs.push_back(std::move(d));
    }
    {
        PipelineDef d;
        d.name = "stms";
        d.displayName = "STMS";
        d.run = [](Runner &r, const PipelineInstance &,
                   const std::string &w) {
            return runKind(r, w, L2PfKind::Stms);
        };
        defs.push_back(std::move(d));
    }
    {
        PipelineDef d;
        d.name = "domino";
        d.displayName = "Domino";
        d.run = [](Runner &r, const PipelineInstance &,
                   const std::string &w) {
            return runKind(r, w, L2PfKind::Domino);
        };
        defs.push_back(std::move(d));
    }
    {
        PipelineDef d;
        d.name = "prophet";
        d.displayName = "Prophet";
        d.params = {
            {"el_acc", ParamValue::Type::Number,
             "EL_ACC insertion threshold in [0, 1] (default 0.15, "
             "Figure 16a)",
             false, 0.0, 1.0},
            {"n_bits", ParamValue::Type::Number,
             "replacement priority bits (default 2, Figure 16b)",
             true, 1.0, 8.0},
            {"hint_capacity", ParamValue::Type::Number,
             "hint-buffer entries (default 128)", true, 1.0,
             65536.0},
            {"degree", ParamValue::Type::Number,
             "chained prefetch degree (default 4)", true, 1.0, 64.0},
            {"mvb_entries", ParamValue::Type::Number,
             "Multi-path Victim Buffer entries (default 65536)",
             true, 1.0, 16777216.0},
            {"mvb_candidates", ParamValue::Type::Number,
             "MVB candidates per entry (default 1, Figure 16c)",
             true, 1.0, 16.0},
            {"features", ParamValue::Type::StringList,
             "active components: replacement insertion mvb resizing "
             "(default all, Figure 19)"},
            {"binary", ParamValue::Type::String,
             "\"profile\" the workload (default) or run with \"none\" "
             "(no hints)"},
            {"learn", ParamValue::Type::StringList,
             "profile + merge these inputs and evaluate the merged "
             "binary (Figures 13/14)"},
        };
        d.validate = validateProphet;
        d.run = runProphetPipeline;
        defs.push_back(std::move(d));
    }
    return defs;
}

} // anonymous namespace

const std::vector<PipelineDef> &
pipelineRegistry()
{
    static const std::vector<PipelineDef> defs = buildRegistry();
    return defs;
}

const PipelineDef *
findPipeline(const std::string &name)
{
    for (const auto &def : pipelineRegistry())
        if (def.name == name)
            return &def;
    return nullptr;
}

const std::vector<std::string> &
pipelineNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto &def : pipelineRegistry())
            out.push_back(def.name);
        return out;
    }();
    return names;
}

std::string
registeredPipelineList()
{
    std::string out;
    for (const auto &name : pipelineNames()) {
        if (!out.empty())
            out += " ";
        out += name;
    }
    return out;
}

std::string
pipelineDisplayName(const std::string &name)
{
    const PipelineDef *def = findPipeline(name);
    return def ? def->displayName : name;
}

std::string
pipelineColumnTitle(const PipelineInstance &p)
{
    return p.label.empty() ? pipelineDisplayName(p.name) : p.label;
}

void
validatePipeline(const PipelineInstance &p)
{
    const PipelineDef *def = findPipeline(p.name);
    if (!def)
        throw PipelineError("unknown pipeline \"" + p.name
                            + "\" (registered: "
                            + registeredPipelineList() + ")");
    for (const auto &[key, value] : p.params) {
        const ParamInfo *info = def->findParam(key);
        if (!info) {
            std::string msg = "unknown parameter \"" + key
                + "\" for pipeline \"" + p.name + "\"";
            if (def->params.empty()) {
                msg += " (it accepts no parameters)";
            } else {
                msg += " (accepted:";
                for (const auto &i : def->params)
                    msg += " " + i.key;
                msg += ")";
            }
            throw PipelineError(msg);
        }
        if (info->type != value.type)
            throw PipelineError(
                "parameter \"" + key + "\" of pipeline \"" + p.name
                + "\" must be a " + paramTypeName(info->type));
        if (value.type == ParamValue::Type::Number) {
            double d = value.num;
            if (d < info->minValue || d > info->maxValue) {
                char range[96];
                std::snprintf(range, sizeof(range),
                              "must be in [%g, %g]", info->minValue,
                              info->maxValue);
                throw PipelineError("parameter \"" + key
                                    + "\" of pipeline \"" + p.name
                                    + "\" " + range);
            }
            if (info->integral && std::nearbyint(d) != d)
                throw PipelineError("parameter \"" + key
                                    + "\" of pipeline \"" + p.name
                                    + "\" must be an integer");
        }
    }
    if (def->validate)
        def->validate(p);
}

} // namespace prophet::sim
