/**
 * @file
 * A small fixed-size thread pool for the sweep engine. Jobs are
 * plain closures; wait() blocks until every submitted job has
 * finished, so a sweep can fan out a batch and then merge results
 * deterministically.
 */

#ifndef PROPHET_SIM_THREAD_POOL_HH
#define PROPHET_SIM_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace prophet::sim
{

/**
 * Fixed-size worker pool. Construction spawns the workers;
 * destruction drains outstanding jobs and joins them. One pool is
 * meant to outlive many submit/wait batches (benches reuse a single
 * engine across figures).
 */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; 0 selects the hardware
     *        concurrency (at least 1).
     */
    explicit ThreadPool(unsigned threads = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a job. Safe to call from worker threads. An exception
     * escaping the job cannot kill the worker: it is logged to
     * stderr, counted (swallowedExceptions()), and dropped so the
     * pool stays healthy and wait() still returns. Callers that need
     * the failure itself must capture it inside the closure, as
     * SweepEngine::forEach does — a nonzero swallowed count therefore
     * indicates a caller bug, not an expected path.
     */
    void submit(std::function<void()> job);

    /** Block until all submitted jobs have completed. */
    void wait();

    /** Exceptions that escaped jobs and were logged + dropped. */
    std::uint64_t
    swallowedExceptions() const
    {
        return swallowed.load(std::memory_order_relaxed);
    }

    /**
     * Nanoseconds workers spent inside jobs, summed across workers
     * (also accumulated into the "threadpool.busy_ns" registry
     * counter). With the pool's lifetime this yields the busy/idle
     * utilization split the metrics report prints: idle time is
     * workers x wall-clock minus this.
     */
    std::uint64_t
    busyNanos() const
    {
        return busyNs.load(std::memory_order_relaxed);
    }

    /** Number of worker threads. */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

    /** Resolve a requested thread count (0 = hardware concurrency). */
    static unsigned resolveThreads(unsigned requested);

  private:
    std::vector<std::thread> workers;
    std::deque<std::function<void()>> jobs;
    std::mutex mu;
    std::condition_variable wakeWorker;
    std::condition_variable allDone;
    std::size_t inFlight = 0;
    bool stopping = false;
    std::atomic<std::uint64_t> swallowed{0};
    std::atomic<std::uint64_t> busyNs{0};

    void workerLoop(unsigned index);
};

} // namespace prophet::sim

#endif // PROPHET_SIM_THREAD_POOL_HH
