/**
 * @file
 * A small fixed-size thread pool for the sweep engine. Jobs are
 * plain closures; wait() blocks until every submitted job has
 * finished, so a sweep can fan out a batch and then merge results
 * deterministically.
 */

#ifndef PROPHET_SIM_THREAD_POOL_HH
#define PROPHET_SIM_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace prophet::sim
{

/**
 * Fixed-size worker pool. Construction spawns the workers;
 * destruction drains outstanding jobs and joins them. One pool is
 * meant to outlive many submit/wait batches (benches reuse a single
 * engine across figures).
 */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; 0 selects the hardware
     *        concurrency (at least 1).
     */
    explicit ThreadPool(unsigned threads = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a job. Safe to call from worker threads. Exceptions
     * escaping the job are swallowed (the pool stays healthy and
     * wait() still returns); capture failures inside the closure if
     * they matter, as SweepEngine::forEach does.
     */
    void submit(std::function<void()> job);

    /** Block until all submitted jobs have completed. */
    void wait();

    /** Number of worker threads. */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

    /** Resolve a requested thread count (0 = hardware concurrency). */
    static unsigned resolveThreads(unsigned requested);

  private:
    std::vector<std::thread> workers;
    std::deque<std::function<void()>> jobs;
    std::mutex mu;
    std::condition_variable wakeWorker;
    std::condition_variable allDone;
    std::size_t inFlight = 0;
    bool stopping = false;

    void workerLoop();
};

} // namespace prophet::sim

#endif // PROPHET_SIM_THREAD_POOL_HH
