/**
 * @file
 * The assembled system: core timing model + cache hierarchy + L1
 * prefetcher + temporal prefetcher + RPG2 plan, driven over a
 * workload trace. Produces the RunStats every figure is computed
 * from.
 */

#ifndef PROPHET_SIM_SYSTEM_HH
#define PROPHET_SIM_SYSTEM_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/cancellation.hh"
#include "common/flat_map.hh"
#include "core/prophet.hh"
#include "mem/hierarchy.hh"
#include "prefetch/markov_table.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/stms.hh"
#include "sim/core_model.hh"
#include "sim/system_config.hh"
#include "trace/generator.hh"

namespace prophet::sim
{

/** Everything one simulation run reports. */
struct RunStats
{
    // Performance.
    double ipc = 0.0;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t records = 0;

    // Demand behaviour (post-warmup).
    std::uint64_t l1Misses = 0;
    std::uint64_t l2DemandAccesses = 0;
    std::uint64_t l2DemandMisses = 0;
    std::uint64_t llcMisses = 0;

    // Temporal prefetcher behaviour.
    std::uint64_t l2PrefetchesIssued = 0;
    std::uint64_t l2PrefetchesUseful = 0;
    std::uint64_t latePrefetches = 0;

    // DRAM traffic.
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t dramPrefetchReads = 0;

    // Metadata table.
    pf::MarkovStats markov{};
    unsigned finalMetadataWays = 0;

    /** DRAM metadata traffic of off-chip schemes (STMS/Domino). */
    pf::OffchipMetadataStats offchipMeta{};

    // Energy accounting inputs (total accesses per level).
    std::uint64_t l1Accesses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t llcAccesses = 0;

    // Per-PC L2 demand misses (RPG2 kernel identification, hint-PC
    // selection checks).
    FlatMap<PC, std::uint64_t> pcMisses;

    /** Prefetch accuracy = useful / issued (0 when none issued). */
    double
    prefetchAccuracy() const
    {
        return l2PrefetchesIssued == 0
            ? 0.0
            : static_cast<double>(l2PrefetchesUseful)
                / static_cast<double>(l2PrefetchesIssued);
    }

    /** DRAM traffic = reads + writes. */
    std::uint64_t dramTraffic() const { return dramReads + dramWrites; }
};

/**
 * One simulated machine. Construct per run; drive it either with
 * run() over a whole trace, or record by record with
 * beginRun()/step()/finish() (microbenchmarks, allocation tests).
 * Either way, one simulation per System instance.
 */
class System
{
  public:
    /**
     * Lookahead depth K of run()'s software-prefetch loop: while
     * record i is simulated, the tag/key scan arrays record i+K will
     * probe are prefetched. K must cover the per-record simulation
     * cost (a few hundred ns) at memory latency (~100 ns), but not
     * run so far ahead that warmed lines are evicted again before
     * use; 8 is comfortably inside that window on current hardware
     * (see README "Simulator performance"). Correctness never
     * depends on K: prefetches are architecturally invisible, and
     * tests pin run() bit-identical to the scalar step() loop.
     */
    static constexpr std::size_t kPrefetchLookahead = 8;

    /**
     * @param config System configuration.
     * @param resolver The workload's indirect resolver (RPG2);
     *        nullptr when absent.
     */
    explicit System(const SystemConfig &config,
                    const trace::IndirectResolver *resolver = nullptr);

    ~System();

    /**
     * Poll @p token every @p interval records (rounded up to a power
     * of two) and abort the run with Error(ErrorCode::Cancelled) once
     * it reports cancelled. Polling is side-effect free, so an
     * attached-but-never-cancelled token leaves every statistic
     * bit-identical to a run without one (regression-gated in
     * tests/test_system.cc). nullptr detaches; takes effect at the
     * next beginRun()/run().
     */
    void setCancellation(const CancellationToken *token,
                         std::size_t interval = 4096);

    /** Simulate the trace and return the statistics. */
    RunStats run(const trace::Trace &t);

    /**
     * Start a record-by-record run. @p expected_records plays the
     * role of the trace length in run(): it positions the warmup
     * boundary at min(cfg.warmupRecords, expected_records / 2).
     */
    void beginRun(std::size_t expected_records);

    /** Simulate one record (between beginRun() and finish()). */
    void step(const trace::TraceRecord &rec);

    /** Close the run started by beginRun() and return its stats. */
    RunStats finish();

    /**
     * The Prophet prefetcher instance when l2Pf is Prophet or
     * Simplified; nullptr otherwise. Valid after construction; used
     * to pull profiling snapshots after run().
     */
    core::ProphetPrefetcher *prophet() { return prophetPf; }

    /** The hierarchy (tests / detailed inspection). */
    mem::Hierarchy &hierarchy() { return hier; }

  private:
    SystemConfig cfg;
    const trace::IndirectResolver *resolver;
    CoreModel coreModel;
    mem::Hierarchy hier;
    std::unique_ptr<pf::L1Prefetcher> l1Pf;
    std::unique_ptr<pf::TemporalPrefetcher> l2Pf;
    core::ProphetPrefetcher *prophetPf = nullptr;

    // ---- per-run state (beginRun() .. finish()) ----
    //
    // Loop-invariant conditions hoisted out of the record loop: raw
    // prefetcher pointers (skips the unique_ptr indirection per
    // record) and the RPG2-enabled flag.
    pf::L1Prefetcher *l1Raw = nullptr;
    pf::TemporalPrefetcher *l2Raw = nullptr;
    bool rpg2Active = false;

    /**
     * Partition sync only matters when an L2 prefetcher can resize
     * its metadata partition; without one the reservation is pinned
     * at zero, so the per-record interval check is skipped outright.
     */
    bool syncActive = false;

    /** (interval - 1) for the power-of-two partition-sync check. */
    std::size_t syncMask = 0;

    /** Cancellation token to poll; nullptr = no polling at all. */
    const CancellationToken *cancelToken = nullptr;

    /** (interval - 1) for the power-of-two cancellation poll. */
    std::size_t cancelMask = 4096 - 1;

    std::size_t recordIndex = 0;
    std::size_t warmBoundary = 0;
    bool warmed = false;

    /**
     * Phase-timer clock points: one read at beginRun(), one inside
     * the once-per-run warm-boundary body, one at finish() — never
     * on the per-record path, so the records/sec gate is untouched.
     * finish() publishes the warmup/simulate split to the
     * "phase.warmup_ns"/"phase.simulate_ns" metrics histograms.
     */
    std::chrono::steady_clock::time_point runStartTime{};
    std::chrono::steady_clock::time_point warmupEndTime{};

    std::uint64_t usefulCount = 0;
    std::uint64_t lateCount = 0;
    std::uint64_t issuedBeforeMark = 0;
    FlatMap<PC, std::uint64_t> pcMissCounts;

    /** Scratch buffers reused across records (no per-record allocs). */
    std::vector<Addr> l1Candidates;
    std::vector<pf::PrefetchRequest> l2Requests;
    std::vector<Addr> rpg2Addrs;

    void syncPartition();

    /**
     * The per-record simulation body shared by step() and run():
     * identical logic on both paths is what makes the prefetched
     * run() loop provably bit-identical to scalar stepping.
     */
    void stepRecord(PC pc, Addr addr, std::uint16_t inst_gap,
                    bool depends_on_prev, bool is_write);
};

} // namespace prophet::sim

#endif // PROPHET_SIM_SYSTEM_HH
