/**
 * @file
 * The assembled system: core timing model + cache hierarchy + L1
 * prefetcher + temporal prefetcher + RPG2 plan, driven over a
 * workload trace. Produces the RunStats every figure is computed
 * from.
 */

#ifndef PROPHET_SIM_SYSTEM_HH
#define PROPHET_SIM_SYSTEM_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/cancellation.hh"
#include "common/flat_map.hh"
#include "core/prophet.hh"
#include "mem/hierarchy.hh"
#include "prefetch/markov_table.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/stms.hh"
#include "sim/core_model.hh"
#include "sim/system_config.hh"
#include "trace/generator.hh"

namespace prophet::sim
{

/** Everything one simulation run reports. */
struct RunStats
{
    // Performance.
    double ipc = 0.0;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t records = 0;

    // Demand behaviour (post-warmup).
    std::uint64_t l1Misses = 0;
    std::uint64_t l2DemandAccesses = 0;
    std::uint64_t l2DemandMisses = 0;
    std::uint64_t llcMisses = 0;

    // Temporal prefetcher behaviour.
    std::uint64_t l2PrefetchesIssued = 0;
    std::uint64_t l2PrefetchesUseful = 0;
    std::uint64_t latePrefetches = 0;

    // DRAM traffic.
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t dramPrefetchReads = 0;

    // Metadata table.
    pf::MarkovStats markov{};
    unsigned finalMetadataWays = 0;

    // ---- sampled fast-mode execution (SamplingConfig) ----

    /** The run used sampled execution (warm + measurement windows). */
    bool sampled = false;

    /** Detailed (measured-window) records actually simulated. */
    std::uint64_t sampledRecords = 0;

    /**
     * Scale applied to window-measured counters to estimate the full
     * run's measured region (1.0 for full runs and for sampled
     * schedules that cover the whole trace).
     */
    double sampleScale = 1.0;

    /** DRAM metadata traffic of off-chip schemes (STMS/Domino). */
    pf::OffchipMetadataStats offchipMeta{};

    // Energy accounting inputs (total accesses per level).
    std::uint64_t l1Accesses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t llcAccesses = 0;

    // Per-PC L2 demand misses (RPG2 kernel identification, hint-PC
    // selection checks).
    FlatMap<PC, std::uint64_t> pcMisses;

    /** Prefetch accuracy = useful / issued (0 when none issued). */
    double
    prefetchAccuracy() const
    {
        return l2PrefetchesIssued == 0
            ? 0.0
            : static_cast<double>(l2PrefetchesUseful)
                / static_cast<double>(l2PrefetchesIssued);
    }

    /** DRAM traffic = reads + writes. */
    std::uint64_t dramTraffic() const { return dramReads + dramWrites; }
};

/**
 * One simulated machine. Construct per run; drive it either with
 * run() over a whole trace, or record by record with
 * beginRun()/step()/finish() (microbenchmarks, allocation tests).
 * Either way, one simulation per System instance.
 */
class System
{
  public:
    /**
     * Lookahead depth K of run()'s software-prefetch loop: while
     * record i is simulated, the tag/key scan arrays record i+K will
     * probe are prefetched. K must cover the per-record simulation
     * cost (a few hundred ns) at memory latency (~100 ns), but not
     * run so far ahead that warmed lines are evicted again before
     * use; 8 is comfortably inside that window on current hardware
     * (see README "Simulator performance"). Correctness never
     * depends on K: prefetches are architecturally invisible, and
     * tests pin run() bit-identical to the scalar step() loop.
     */
    static constexpr std::size_t kPrefetchLookahead = 8;

    /**
     * @param config System configuration.
     * @param resolver The workload's indirect resolver (RPG2);
     *        nullptr when absent.
     */
    explicit System(const SystemConfig &config,
                    const trace::IndirectResolver *resolver = nullptr);

    ~System();

    /**
     * Poll @p token every @p interval records (rounded up to a power
     * of two) and abort the run with Error(ErrorCode::Cancelled) once
     * it reports cancelled. Polling is side-effect free, so an
     * attached-but-never-cancelled token leaves every statistic
     * bit-identical to a run without one (regression-gated in
     * tests/test_system.cc). nullptr detaches; takes effect at the
     * next beginRun()/run().
     */
    void setCancellation(const CancellationToken *token,
                         std::size_t interval = 4096);

    /**
     * Simulate the trace and return the statistics. With
     * cfg.sampling.enabled the trace is run in sampled fast mode
     * (functional warmup + detailed measurement windows, everything
     * else fast-forwarded) and the window-measured statistics are
     * scaled to full-run estimates; otherwise this is the exact
     * full-trace loop, bit-identical to scalar step() calls.
     */
    RunStats run(const trace::Trace &t);

    /**
     * Start a record-by-record run. @p expected_records plays the
     * role of the trace length in run(): it positions the warmup
     * boundary at min(cfg.warmupRecords, expected_records / 2).
     */
    void beginRun(std::size_t expected_records);

    /** Simulate one record (between beginRun() and finish()). */
    void step(const trace::TraceRecord &rec);

    /** Close the run started by beginRun() and return its stats. */
    RunStats finish();

    /**
     * The Prophet prefetcher instance when l2Pf is Prophet or
     * Simplified; nullptr otherwise. Valid after construction; used
     * to pull profiling snapshots after run().
     */
    core::ProphetPrefetcher *prophet() { return prophetPf; }

    /** The hierarchy (tests / detailed inspection). */
    mem::Hierarchy &hierarchy() { return hier; }

  private:
    SystemConfig cfg;
    const trace::IndirectResolver *resolver;
    CoreModel coreModel;
    mem::Hierarchy hier;
    std::unique_ptr<pf::L1Prefetcher> l1Pf;
    std::unique_ptr<pf::TemporalPrefetcher> l2Pf;
    core::ProphetPrefetcher *prophetPf = nullptr;

    // ---- per-run state (beginRun() .. finish()) ----
    //
    // Loop-invariant conditions hoisted out of the record loop: raw
    // prefetcher pointers (skips the unique_ptr indirection per
    // record) and the RPG2-enabled flag.
    pf::L1Prefetcher *l1Raw = nullptr;
    pf::TemporalPrefetcher *l2Raw = nullptr;
    bool rpg2Active = false;

    /**
     * Partition sync only matters when an L2 prefetcher can resize
     * its metadata partition; without one the reservation is pinned
     * at zero, so the per-record interval check is skipped outright.
     */
    bool syncActive = false;

    /** (interval - 1) for the power-of-two partition-sync check. */
    std::size_t syncMask = 0;

    /** Cancellation token to poll; nullptr = no polling at all. */
    const CancellationToken *cancelToken = nullptr;

    /** (interval - 1) for the power-of-two cancellation poll. */
    std::size_t cancelMask = 4096 - 1;

    std::size_t recordIndex = 0;
    std::size_t warmBoundary = 0;
    bool warmed = false;

    // ---- sampled-mode state (runSampled() only) ----

    /** Trace length of the sampled run (RunStats::records). */
    std::size_t traceRecords = 0;

    /** Detailed records stepped inside measurement windows. */
    std::uint64_t detailedTotal = 0;

    /** Wall time spent in functional-warm segments (ns). */
    std::uint64_t warmWallNs = 0;

    /** Wall time spent in detailed measurement windows (ns). */
    std::uint64_t windowWallNs = 0;

    /**
     * Per-window measurements summed across windows. Each window is
     * bracketed by windowBegin() (reset the hierarchy/core stats
     * windows) and windowEnd() (fold the window's deltas in here).
     * Cycles stay fractional until finish() rounds once — that, plus
     * resetting exactly like the full run's warmup boundary, is what
     * makes a whole-trace window bit-identical to the full run.
     */
    struct WindowAccum
    {
        double cycles = 0.0;
        std::uint64_t instructions = 0;
        std::uint64_t l1DemandHits = 0, l1DemandMisses = 0;
        std::uint64_t l2DemandHits = 0, l2DemandMisses = 0;
        std::uint64_t llcDemandHits = 0, llcDemandMisses = 0;
        std::uint64_t dramReads = 0, dramWrites = 0;
        std::uint64_t dramPrefetchReads = 0;
        std::uint64_t l2PrefetchesIssued = 0;
    };
    WindowAccum windowAccum{};

    /**
     * Phase-timer clock points: one read at beginRun(), one inside
     * the once-per-run warm-boundary body, one at finish() — never
     * on the per-record path, so the records/sec gate is untouched.
     * finish() publishes the warmup/simulate split to the
     * "phase.warmup_ns"/"phase.simulate_ns" metrics histograms.
     */
    std::chrono::steady_clock::time_point runStartTime{};
    std::chrono::steady_clock::time_point warmupEndTime{};

    std::uint64_t usefulCount = 0;
    std::uint64_t lateCount = 0;
    std::uint64_t issuedBeforeMark = 0;
    FlatMap<PC, std::uint64_t> pcMissCounts;

    /** Scratch buffers reused across records (no per-record allocs). */
    std::vector<Addr> l1Candidates;
    std::vector<pf::PrefetchRequest> l2Requests;
    std::vector<Addr> rpg2Addrs;

    void syncPartition();

    /**
     * The per-record simulation body shared by step() and run():
     * identical logic on both paths is what makes the prefetched
     * run() loop provably bit-identical to scalar stepping.
     */
    void stepRecord(PC pc, Addr addr, std::uint16_t inst_gap,
                    bool depends_on_prev, bool is_write);

    /**
     * The shared record body. Detailed=true is the exact stepRecord
     * path; Detailed=false is the functional-warm path of sampled
     * runs — identical architectural state transitions (core timing,
     * caches, every prefetcher's training, RPG2, partition sync), but
     * no System-level statistic attribution (useful/late counters,
     * per-PC miss map, warm-boundary bookkeeping). Sharing one
     * template body keeps the two paths in lockstep by construction.
     */
    template <bool Detailed>
    void stepRecordImpl(PC pc, Addr addr, std::uint16_t inst_gap,
                        bool depends_on_prev, bool is_write);

    /** The sampled fast-mode trace loop (cfg.sampling.enabled). */
    RunStats runSampled(const trace::Trace &t);

    /** Open a measurement window: reset the stats windows. */
    void windowBegin();

    /** Close a measurement window: fold its deltas into the accum. */
    void windowEnd();

    /**
     * Assemble a sampled run's RunStats: scale the window accumulators
     * to full-trace estimates and publish the sampled-phase metrics.
     */
    RunStats finishSampled();
};

} // namespace prophet::sim

#endif // PROPHET_SIM_SYSTEM_HH
