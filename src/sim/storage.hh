/**
 * @file
 * Storage-overhead accounting (Section 5.10 and the comparisons of
 * Section 2.1): the hardware state each scheme adds beyond the
 * shared metadata table.
 */

#ifndef PROPHET_SIM_STORAGE_HH
#define PROPHET_SIM_STORAGE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace prophet::sim
{

/** One line of the storage report. */
struct StorageItem
{
    std::string component;
    std::uint64_t bits = 0;

    double kib() const { return static_cast<double>(bits) / 8192.0; }
};

/** Storage breakdown of Prophet (Section 5.10). */
std::vector<StorageItem> prophetStorage(
    std::uint64_t max_table_entries = 196608,
    unsigned replacement_bits = 2, unsigned hint_entries = 128,
    std::uint64_t mvb_entries = 65536);

/** Storage breakdown of Triage's management structures. */
std::vector<StorageItem> triageStorage();

/** Storage breakdown of Triangel's management structures. */
std::vector<StorageItem> triangelStorage();

/** Sum of a breakdown in bits. */
std::uint64_t totalBits(const std::vector<StorageItem> &items);

} // namespace prophet::sim

#endif // PROPHET_SIM_STORAGE_HH
