/**
 * @file
 * Memory-hierarchy energy model (Section 5.11). The paper uses CACTI
 * at 22 nm only to obtain per-access energies and states the one
 * ratio that matters: DRAM access energy ~ 25x an LLC access. We
 * encode representative 22 nm per-access energies directly (CACTI is
 * not redistributable); all conclusions depend only on the ratios.
 */

#ifndef PROPHET_SIM_ENERGY_HH
#define PROPHET_SIM_ENERGY_HH

#include "sim/system.hh"

namespace prophet::sim
{

/** Per-access energies in nanojoules (22 nm class). */
struct EnergyParams
{
    double l1AccessNj = 0.05;
    double l2AccessNj = 0.25;
    double llcAccessNj = 1.0;
    double metadataAccessNj = 1.0; ///< metadata lives in LLC arrays
    double dramAccessNj = 25.0;    ///< 25x LLC (Section 5.11)
};

/** Energy breakdown of one run. */
struct EnergyReport
{
    double l1Nj = 0.0;
    double l2Nj = 0.0;
    double llcNj = 0.0;
    double metadataNj = 0.0;
    double dramNj = 0.0;

    double
    totalNj() const
    {
        return l1Nj + l2Nj + llcNj + metadataNj + dramNj;
    }
};

/** Compute the memory-hierarchy energy of a run. */
EnergyReport memoryEnergy(const RunStats &stats,
                          const EnergyParams &params = {});

} // namespace prophet::sim

#endif // PROPHET_SIM_ENERGY_HH
