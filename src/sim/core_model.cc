#include "sim/core_model.hh"

#include <cmath>

#include "common/intmath.hh"
#include "common/log.hh"

namespace prophet::sim
{

CoreModel::CoreModel(const CoreParams &params)
    : prm(params)
{
    prophet_assert(prm.issueWidth > 0.0);
    prophet_assert(prm.robSize >= 1);
    // One slot per possibly-outstanding load, rounded up so the ring
    // indices wrap with a mask.
    outstanding.resize(nextPowerOf2(prm.robSize + 1));
    outMask = outstanding.size() - 1;
}

Cycle
CoreModel::beginAccess(unsigned inst_gap, bool depends_on_prev)
{
    // Issue the gap instructions plus this access at sustained width.
    instCount += inst_gap + 1;
    issueClock += static_cast<double>(inst_gap + 1) / prm.issueWidth;

    // ROB constraint: issue may not run more than robSize
    // instructions ahead of the oldest unretired load.
    while (outHead != outTail) {
        const auto &[idx, retire_at] = outstanding[outHead & outMask];
        if (idx + prm.robSize <= instCount) {
            // That load must retire before this instruction can
            // even occupy the ROB.
            if (issueClock < retire_at)
                issueClock = retire_at;
            ++outHead;
        } else {
            break;
        }
    }

    // Data dependence: a chased pointer cannot issue before its
    // parent's value arrives.
    if (depends_on_prev && issueClock < lastLoadComplete)
        issueClock = lastLoadComplete;

    return static_cast<Cycle>(std::llround(std::ceil(issueClock)));
}

void
CoreModel::completeAccess(Cycle ready_at)
{
    auto ready = static_cast<double>(ready_at);
    lastLoadComplete = ready;

    // In-order retirement: this load retires no earlier than every
    // prior instruction.
    retireClock = std::max(retireClock, ready);
    prophet_assert(outTail - outHead <= outMask);
    outstanding[outTail & outMask] = {instCount, retireClock};
    ++outTail;
}

Cycle
CoreModel::finalCycles() const
{
    double done = std::max(issueClock, retireClock);
    return static_cast<Cycle>(std::llround(std::ceil(done)));
}

double
CoreModel::ipc() const
{
    Cycle c = finalCycles();
    if (c == 0)
        return 0.0;
    return static_cast<double>(instCount) / static_cast<double>(c);
}

void
CoreModel::mark()
{
    // Statistics-window boundary: drain the pipeline so the measured
    // window does not inherit retirement backlog from warmup.
    markCycles = std::max(issueClock, retireClock);
    issueClock = markCycles;
    retireClock = markCycles;
    markInsts = instCount;
}

double
CoreModel::ipcSinceMark() const
{
    double cycles = std::max(issueClock, retireClock) - markCycles;
    if (cycles <= 0.0)
        return 0.0;
    return static_cast<double>(instCount - markInsts) / cycles;
}

} // namespace prophet::sim
