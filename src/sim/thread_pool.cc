#include "sim/thread_pool.hh"

#include <chrono>
#include <exception>
#include <string>

#include "common/log.hh"
#include "common/metrics.hh"
#include "common/span_trace.hh"

namespace prophet::sim
{

unsigned
ThreadPool::resolveThreads(unsigned requested)
{
    if (requested > 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    unsigned n = resolveThreads(threads);
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    wakeWorker.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        jobs.push_back(std::move(job));
        ++inFlight;
    }
    wakeWorker.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu);
    allDone.wait(lock, [this] { return inFlight == 0; });
}

void
ThreadPool::workerLoop(unsigned index)
{
    // Label this worker's span-trace track. Cheap, and recorded even
    // while the collector is off, so a pool constructed before
    // --trace-out enables collection still gets named tracks.
    span::setCurrentThreadName("worker-" + std::to_string(index));

    // Cache the registry lookup once per worker; the busy counter is
    // bumped per *job* (whole simulations), not per record.
    metrics::Counter &busy_counter =
        metrics::counter("threadpool.busy_ns");
    metrics::Counter &escaped_counter =
        metrics::counter("threadpool.escaped_exceptions");

    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu);
            wakeWorker.wait(lock, [this] {
                return stopping || !jobs.empty();
            });
            if (jobs.empty())
                return; // stopping with nothing left to run
            job = std::move(jobs.front());
            jobs.pop_front();
        }
        auto t0 = std::chrono::steady_clock::now();
        try {
            job();
        } catch (const std::exception &e) {
            // A throwing job must not kill the worker (std::terminate)
            // or leak inFlight and hang wait(). Callers that care
            // about failures capture them inside the closure, as
            // SweepEngine::forEach does — so an exception reaching
            // here is a caller bug, worth a trace and a counter
            // instead of silence.
            swallowed.fetch_add(1, std::memory_order_relaxed);
            escaped_counter.inc();
            prophet_warnf("thread-pool: job leaked exception: %s",
                          e.what());
        } catch (...) {
            swallowed.fetch_add(1, std::memory_order_relaxed);
            escaped_counter.inc();
            prophet_warnf("thread-pool: job leaked non-std exception");
        }
        auto busy =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
        if (busy > 0) {
            busyNs.fetch_add(static_cast<std::uint64_t>(busy),
                             std::memory_order_relaxed);
            busy_counter.inc(static_cast<std::uint64_t>(busy));
        }
        {
            std::lock_guard<std::mutex> lock(mu);
            if (--inFlight == 0)
                allDone.notify_all();
        }
    }
}

} // namespace prophet::sim
