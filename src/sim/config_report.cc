#include "sim/config_report.hh"

#include <cstdio>

#include "stats/table.hh"

namespace prophet::sim
{

std::string
systemConfigReport(const SystemConfig &cfg)
{
    using prophet::stats::Table;

    Table t({"Module", "Configuration"});
    t.addRow({"Core",
              "5-wide issue model, 288-entry ROB (analytic OoO)"});
    auto cache_row = [&](const char *name,
                         const prophet::mem::CacheConfig &c) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%llu KB, %u-way, 64B line, %u MSHRs, %s, "
                      "%llu cycles hit latency",
                      static_cast<unsigned long long>(c.sizeBytes
                                                      / 1024),
                      c.assoc, c.mshrs, c.replacement.c_str(),
                      static_cast<unsigned long long>(c.hitLatency));
        t.addRow({name, buf});
    };
    cache_row("Private L1D cache", cfg.hier.l1d);
    t.addRow({"L1D prefetcher", "degree-8 stride prefetcher"});
    cache_row("Private L2 cache", cfg.hier.l2);
    cache_row("Shared L3 cache", cfg.hier.llc);
    {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "LPDDR5-class: %llu-cycle access, %llu cycles/"
                      "64B transfer, %u channel(s)",
                      static_cast<unsigned long long>(
                          cfg.hier.dram.accessLatency),
                      static_cast<unsigned long long>(
                          cfg.hier.dram.cyclesPerTransfer),
                      cfg.hier.dram.channels);
        t.addRow({"Memory", buf});
    }
    t.addRow({"Metadata table",
              "up to 8 LLC ways = 1 MB = 196,608 compressed entries "
              "(12 x 41-bit per 64B line)"});

    return "== Table 1: System Configuration ==\n\n" + t.render()
        + "\n";
}

} // namespace prophet::sim
