/**
 * @file
 * Whole-system configuration: Table 1's parameters plus the
 * prefetcher selection and feature knobs every figure varies.
 */

#ifndef PROPHET_SIM_SYSTEM_CONFIG_HH
#define PROPHET_SIM_SYSTEM_CONFIG_HH

#include <cstddef>
#include <string>

#include "common/intmath.hh"
#include "core/analyzer.hh"
#include "core/prophet.hh"
#include "mem/hierarchy.hh"
#include "prefetch/domino.hh"
#include "prefetch/stms.hh"
#include "prefetch/triage.hh"
#include "prefetch/triangel.hh"
#include "rpg2/rpg2.hh"
#include "sim/core_model.hh"

namespace prophet::sim
{

/** L1 prefetcher selection (Table 1 default: degree-8 stride). */
enum class L1PfKind { None, Stride, Ipcp };

/** Temporal (L2) prefetcher selection. */
enum class L2PfKind
{
    None,       ///< baseline without temporal prefetching
    Triage,     ///< Triage, degree 1, Hawkeye metadata replacement
    Triage4,    ///< Triage at prefetch degree 4 (Figure 19 baseline)
    Triangel,   ///< Triangel (state of the art)
    Prophet,    ///< Prophet (profile-guided), needs an OptimizedBinary
    Simplified, ///< Prophet's profiling configuration (Section 3.2)
    Stms,       ///< off-chip-metadata STMS (historical baseline)
    Domino,     ///< off-chip-metadata Domino (historical baseline)
};

/**
 * Round a partition-sync interval up to the power of two the record
 * loop's mask test requires. System applies this to
 * SystemConfig::partitionSyncInterval at construction, so a
 * non-power-of-two request syncs at the next power of two instead of
 * silently misfiring.
 */
constexpr std::size_t
normalizePartitionSyncInterval(std::size_t interval)
{
    return interval <= 1 ? 1 : nextPowerOf2(interval);
}

/** The full system configuration. */
struct SystemConfig
{
    CoreParams core{};
    mem::HierarchyConfig hier{};

    L1PfKind l1Pf = L1PfKind::Stride;
    L2PfKind l2Pf = L2PfKind::None;

    pf::TriageConfig triage{};
    pf::TriangelConfig triangel{};
    pf::StmsConfig stms{};
    pf::DominoConfig domino{};
    core::ProphetConfig prophet{};

    /** Hints + CSR for Prophet mode (the "optimized binary"). */
    core::OptimizedBinary binary{};

    /** RPG2 software-prefetch plan (empty = disabled). */
    rpg2::Rpg2Plan rpg2Plan{};

    /** Records before the statistics warmup boundary. */
    std::size_t warmupRecords = 200'000;

    /**
     * Resync LLC way partition every this many records. Rounded up
     * to a power of two (normalizePartitionSyncInterval) when the
     * System is built.
     */
    std::size_t partitionSyncInterval = 4096;

    /** Default Table 1 configuration. */
    static SystemConfig table1();
};

} // namespace prophet::sim

#endif // PROPHET_SIM_SYSTEM_CONFIG_HH
