/**
 * @file
 * Whole-system configuration: Table 1's parameters plus the
 * prefetcher selection and feature knobs every figure varies.
 */

#ifndef PROPHET_SIM_SYSTEM_CONFIG_HH
#define PROPHET_SIM_SYSTEM_CONFIG_HH

#include <cstddef>
#include <string>

#include "common/intmath.hh"
#include "core/analyzer.hh"
#include "core/prophet.hh"
#include "mem/hierarchy.hh"
#include "prefetch/domino.hh"
#include "prefetch/stms.hh"
#include "prefetch/triage.hh"
#include "prefetch/triangel.hh"
#include "rpg2/rpg2.hh"
#include "sim/core_model.hh"

namespace prophet::sim
{

/** L1 prefetcher selection (Table 1 default: degree-8 stride). */
enum class L1PfKind { None, Stride, Ipcp };

/** Temporal (L2) prefetcher selection. */
enum class L2PfKind
{
    None,       ///< baseline without temporal prefetching
    Triage,     ///< Triage, degree 1, Hawkeye metadata replacement
    Triage4,    ///< Triage at prefetch degree 4 (Figure 19 baseline)
    Triangel,   ///< Triangel (state of the art)
    Prophet,    ///< Prophet (profile-guided), needs an OptimizedBinary
    Simplified, ///< Prophet's profiling configuration (Section 3.2)
    Stms,       ///< off-chip-metadata STMS (historical baseline)
    Domino,     ///< off-chip-metadata Domino (historical baseline)
};

/**
 * Round a partition-sync interval up to the power of two the record
 * loop's mask test requires. System applies this to
 * SystemConfig::partitionSyncInterval at construction, so a
 * non-power-of-two request syncs at the next power of two instead of
 * silently misfiring.
 */
constexpr std::size_t
normalizePartitionSyncInterval(std::size_t interval)
{
    return interval <= 1 ? 1 : nextPowerOf2(interval);
}

/**
 * Sampled (fast-mode) execution: SimPoint/SMARTS-style region
 * sampling over the trace. The trace is tiled into intervals of
 * @ref intervalRecords; each interval ends in a detailed measurement
 * window of @ref windowRecords, preceded by @ref warmupRecords of
 * functional warming (caches, prefetchers and Markov/metadata tables
 * train, System-level statistics are not attributed). Records before
 * the warm region of the next window are fast-forwarded — not
 * simulated at all — which is where the 10-50x effective throughput
 * comes from. Measured window statistics are scaled to estimates of
 * what a full run would have reported (see System::finish); a
 * schedule whose warm+window phases cover the whole trace is
 * bit-identical to the full run (regression-gated in
 * tests/test_sampling.cc).
 */
struct SamplingConfig
{
    /** Off by default: run() stays the exact full-trace loop. */
    bool enabled = false;

    /**
     * Functional-warm records before each measurement window. Larger
     * values cost throughput and buy state fidelity (long-history
     * structures — the LLC, Markov tables — recover from the
     * fast-forward). Clipped at the previous window's end, so an
     * oversized warmup (e.g. the trace length) simply disables
     * fast-forwarding.
     */
    std::size_t warmupRecords = 100'000;

    /** Detailed records measured per window (>= 1). */
    std::size_t windowRecords = 50'000;

    /**
     * Period of the schedule: one window per this many trace
     * records (>= windowRecords). The detailed fraction
     * windowRecords / intervalRecords bounds the speedup from above.
     */
    std::size_t intervalRecords = 1'000'000;

    /**
     * Shift the whole schedule this many records into the trace
     * (deterministic offset; windows end at offset + k *
     * intervalRecords, k = 1, 2, ...).
     */
    std::size_t offset = 0;
};

/** The full system configuration. */
struct SystemConfig
{
    CoreParams core{};
    mem::HierarchyConfig hier{};

    L1PfKind l1Pf = L1PfKind::Stride;
    L2PfKind l2Pf = L2PfKind::None;

    pf::TriageConfig triage{};
    pf::TriangelConfig triangel{};
    pf::StmsConfig stms{};
    pf::DominoConfig domino{};
    core::ProphetConfig prophet{};

    /** Hints + CSR for Prophet mode (the "optimized binary"). */
    core::OptimizedBinary binary{};

    /** RPG2 software-prefetch plan (empty = disabled). */
    rpg2::Rpg2Plan rpg2Plan{};

    /** Records before the statistics warmup boundary. */
    std::size_t warmupRecords = 200'000;

    /** Sampled fast-mode execution (disabled by default). */
    SamplingConfig sampling{};

    /**
     * This run is Prophet's offline profiling pass (Section 3.2):
     * its wall time is published as "phase.profile_ns" instead of
     * the warmup/simulate split, so phase accounting separates the
     * one-time per-workload analysis cost from timing simulation —
     * the part sampling accelerates. Set by Runner::profileWorkload.
     */
    bool profilingRun = false;

    /**
     * Resync LLC way partition every this many records. Rounded up
     * to a power of two (normalizePartitionSyncInterval) when the
     * System is built.
     */
    std::size_t partitionSyncInterval = 4096;

    /** Default Table 1 configuration. */
    static SystemConfig table1();
};

} // namespace prophet::sim

#endif // PROPHET_SIM_SYSTEM_CONFIG_HH
