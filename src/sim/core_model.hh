/**
 * @file
 * Analytic out-of-order core timing model. Reproduces the first-order
 * effects that matter to prefetching studies on Table 1's core
 * (5-wide fetch, 10-wide issue, 288-entry ROB):
 *
 *  - instructions issue at a sustained width;
 *  - independent misses overlap (memory-level parallelism): a second
 *    miss issued one cycle after the first completes one cycle after
 *    it, not a full latency later;
 *  - dependent loads serialize: a pointer-chase step cannot issue
 *    until its parent's data returns — the reason temporal
 *    prefetching matters (Section 1);
 *  - the ROB bounds how far issue runs ahead of retirement, so an
 *    unprefetched DRAM miss stalls the core once the window fills.
 */

#ifndef PROPHET_SIM_CORE_MODEL_HH
#define PROPHET_SIM_CORE_MODEL_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace prophet::sim
{

/** Core parameters (Table 1). */
struct CoreParams
{
    /** Sustained issue width in instructions per cycle. */
    double issueWidth = 5.0;

    /** Reorder-buffer capacity in instructions. */
    unsigned robSize = 288;
};

/**
 * The timing model. Drive it record by record:
 *   Cycle t = core.beginAccess(gap, depends);
 *   auto out = hierarchy.access(..., t);
 *   core.completeAccess(out.readyAt);
 */
class CoreModel
{
  public:
    explicit CoreModel(const CoreParams &params = {});

    /**
     * Advance the issue clock past @p inst_gap non-memory
     * instructions and account ROB/dependence constraints for the
     * upcoming memory access.
     *
     * @return The cycle at which the access issues.
     */
    Cycle beginAccess(unsigned inst_gap, bool depends_on_prev);

    /** Report the access's data-ready cycle. */
    void completeAccess(Cycle ready_at);

    /** Retired instructions so far. */
    std::uint64_t retiredInstructions() const { return instCount; }

    /** Total cycles including the drain of in-flight loads. */
    Cycle finalCycles() const;

    /** IPC over the whole run so far. */
    double ipc() const;

    /**
     * Mark the warmup boundary: ipcSinceMark()/statsWindow use only
     * work after this point.
     */
    void mark();

    /** IPC measured after the last mark(). */
    double ipcSinceMark() const;

    /**
     * Exact (fractional) cycles elapsed since the last mark(). The
     * sampled run path accumulates these per measurement window;
     * keeping the value fractional until the final rounding is what
     * lets a whole-trace window reproduce finalCycles() bit for bit.
     */
    double cyclesSinceMark() const
    {
        double c = (issueClock > retireClock ? issueClock
                                             : retireClock)
            - markCycles;
        return c > 0.0 ? c : 0.0;
    }

    /** Instructions retired since the last mark(). */
    std::uint64_t instructionsSinceMark() const
    {
        return instCount - markInsts;
    }

    /** Exact (fractional) total cycles, before finalCycles() rounds. */
    double exactCycles() const
    {
        return issueClock > retireClock ? issueClock : retireClock;
    }

  private:
    CoreParams prm;

    /** Issue clock (fractional cycles at issueWidth granularity). */
    double issueClock = 0.0;

    /** Retired-instruction counter. */
    std::uint64_t instCount = 0;

    /** Completion cycle of the most recent load (dependences). */
    double lastLoadComplete = 0.0;

    /** In-order retirement frontier. */
    double retireClock = 0.0;

    /**
     * Outstanding loads: (instruction index, retire time), a ring
     * buffer sized at construction. At most robSize loads can be
     * outstanding (older ones are force-retired by the ROB check in
     * beginAccess), so the record loop never allocates — unlike the
     * deque this replaces, which allocated a chunk every ~32
     * push/pop cycles.
     */
    std::vector<std::pair<std::uint64_t, double>> outstanding;
    std::size_t outHead = 0;
    std::size_t outTail = 0;
    std::size_t outMask = 0;

    /** Warmup mark. */
    double markCycles = 0.0;
    std::uint64_t markInsts = 0;
};

} // namespace prophet::sim

#endif // PROPHET_SIM_CORE_MODEL_HH
